// End-to-end tests of the generalized partial-order analysis procedure
// (Section 3.3): the headline reductions on the paper's example families,
// deadlock verdicts with verified witnesses, and the anti-ignoring guard.
#include <gtest/gtest.h>

#include "core/gpo.hpp"
#include "models/models.hpp"
#include "reach/explorer.hpp"

namespace gpo::core {
namespace {

using petri::PetriNet;

class BothFamilies : public ::testing::TestWithParam<FamilyKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, BothFamilies,
                         ::testing::Values(FamilyKind::kExplicit,
                                           FamilyKind::kBdd,
                                           FamilyKind::kInterned),
                         [](const auto& info) {
                           return family_kind_name(info.param);
                         });

TEST_P(BothFamilies, ConflictChainNeedsTwoStates) {
  // The paper's Fig. 2 headline: 2^{N+1}-1 states for classical partial
  // order analysis, 2 for GPO — independent of N.
  for (std::size_t n : {1u, 4u, 8u}) {
    auto r = run_gpo(models::make_conflict_chain(n), GetParam());
    EXPECT_EQ(r.state_count, 2u) << "n=" << n;
    EXPECT_TRUE(r.deadlock_found);  // terminal states are deadlocks
    EXPECT_TRUE(r.witness_is_dead);
    EXPECT_EQ(r.multiple_steps, 1u);
    EXPECT_EQ(r.single_steps, 0u);
  }
}

TEST_P(BothFamilies, DiamondNeedsTwoStates) {
  for (std::size_t n : {1u, 3u, 6u}) {
    auto r = run_gpo(models::make_diamond(n), GetParam());
    EXPECT_EQ(r.state_count, 2u) << "n=" << n;
    EXPECT_TRUE(r.deadlock_found);
  }
}

TEST_P(BothFamilies, NsdpStateCountIsConstantInN) {
  // Table 1 NSDP: the GPO graph size does not grow with the number of
  // philosophers (the paper reports 3 for its model; ours needs 5 because
  // fork pickup is a two-stage grab).
  std::size_t baseline = 0;
  for (std::size_t n : {2u, 3u, 4u, 5u}) {
    auto r = run_gpo(models::make_nsdp(n), GetParam());
    EXPECT_TRUE(r.deadlock_found) << "n=" << n;
    EXPECT_TRUE(r.witness_is_dead) << "n=" << n;
    if (baseline == 0)
      baseline = r.state_count;
    else
      EXPECT_EQ(r.state_count, baseline) << "n=" << n;
  }
  EXPECT_LE(baseline, 6u);
}

TEST_P(BothFamilies, NsdpWitnessIsRealDeadlock) {
  PetriNet net = models::make_nsdp(3);
  auto r = run_gpo(net, GetParam());
  ASSERT_TRUE(r.deadlock_found);
  ASSERT_TRUE(r.deadlock_witness.has_value());
  EXPECT_TRUE(net.is_deadlocked(*r.deadlock_witness));
}

TEST_P(BothFamilies, ReadersWritersNeedsTwoStates) {
  // Table 1 RW: GPO reports 2 states regardless of the process count, and
  // the model is deadlock-free.
  for (std::size_t n : {3u, 6u, 9u}) {
    auto r = run_gpo(models::make_readers_writers(n), GetParam());
    EXPECT_EQ(r.state_count, 2u) << "n=" << n;
    EXPECT_FALSE(r.deadlock_found) << "n=" << n;
  }
}

TEST_P(BothFamilies, ArbiterTreeGrowsSlowlyAndIsDeadlockFree) {
  std::size_t prev = 0;
  for (std::size_t n : {2u, 4u, 8u}) {
    auto r = run_gpo(models::make_arbiter_tree(n), GetParam());
    EXPECT_FALSE(r.deadlock_found) << "n=" << n;
    EXPECT_GE(r.state_count, prev);
    prev = r.state_count;
  }
  EXPECT_LE(prev, 32u);  // sub-linear in the full graph's exponential growth
}

TEST_P(BothFamilies, OvertakeFindsProtocolDeadlock) {
  // The stranded-asker deadlock requires a re-contested conflict, which is
  // beyond the valid-set formalism's one-shot choices; the anti-ignoring
  // guard must delegate and still find it.
  for (std::size_t n : {2u, 4u, 5u}) {
    auto r = run_gpo(models::make_overtake(n), GetParam());
    EXPECT_TRUE(r.deadlock_found) << "n=" << n;
  }
}

TEST_P(BothFamilies, OvertakeGuardDelegates) {
  GpoOptions opt;
  auto with_guard = run_gpo(models::make_overtake(4), GetParam(), opt);
  EXPECT_TRUE(with_guard.deadlock_found);
  EXPECT_GT(with_guard.ignoring_expansions, 0u);
  EXPECT_GT(with_guard.delegated_states, 0u);

  opt.ignoring_guard = false;
  auto without = run_gpo(models::make_overtake(4), GetParam(), opt);
  // Without the elided footnote-2 check the reduction is unsound here: the
  // livelock loop of car 0 starves every other transition.
  EXPECT_FALSE(without.deadlock_found);
}

TEST_P(BothFamilies, GuardIsIdleWhenNothingStarves) {
  for (auto make : {+[] { return models::make_nsdp(3); },
                    +[] { return models::make_readers_writers(4); },
                    +[] { return models::make_conflict_chain(4); }}) {
    auto r = run_gpo(make(), GetParam());
    EXPECT_EQ(r.ignoring_expansions, 0u);
    EXPECT_EQ(r.delegated_states, 0u);
  }
}

TEST_P(BothFamilies, StopAtFirstDeadlock) {
  GpoOptions opt;
  opt.stop_at_first_deadlock = true;
  auto r = run_gpo(models::make_nsdp(4), GetParam(), opt);
  EXPECT_TRUE(r.deadlock_found);
  auto full = run_gpo(models::make_nsdp(4), GetParam());
  EXPECT_LE(r.state_count, full.state_count);
}

TEST_P(BothFamilies, StateLimitReported) {
  GpoOptions opt;
  opt.max_states = 3;
  auto r = run_gpo(models::make_overtake(3), GetParam(), opt);
  EXPECT_TRUE(r.limit_hit);
}

TEST_P(BothFamilies, BuildGraphProducesLabels) {
  GpoOptions opt;
  opt.build_graph = true;
  auto r = run_gpo(models::make_fig7(), GetParam(), opt);
  EXPECT_EQ(r.graph.node_labels.size(), r.state_count);
  EXPECT_EQ(r.graph.edges.size(), r.edge_count);
  ASSERT_FALSE(r.graph.edges.empty());
  // First step fires the {A,B} conflict pair simultaneously.
  EXPECT_NE(r.graph.edges[0].label.find("A"), std::string::npos);
  EXPECT_NE(r.graph.edges[0].label.find("B"), std::string::npos);
}

TEST_P(BothFamilies, Fig7ThreeStates) {
  auto r = run_gpo(models::make_fig7(), GetParam());
  EXPECT_EQ(r.state_count, 3u);
  EXPECT_EQ(r.multiple_steps, 2u);
  EXPECT_TRUE(r.deadlock_found);  // the terminal markings are dead
}

TEST_P(BothFamilies, FragmentationBailOutIsSoundOnSlottedRing) {
  // ring(3) re-contests every conflict each revolution: the GPN state space
  // fragments past the classical graph (30 markings). The bail-out must
  // concede and still produce the right verdict.
  GpoOptions opt;
  opt.delegate_after_states = 500;
  auto r = run_gpo(models::make_slotted_ring(3), GetParam(), opt);
  EXPECT_TRUE(r.bailed_to_classical);
  EXPECT_GT(r.delegated_states, 0u);
  EXPECT_FALSE(r.deadlock_found);
  EXPECT_FALSE(r.limit_hit);
}

TEST_P(BothFamilies, CyclicSchedulerStaysLinear) {
  for (std::size_t n : {4u, 8u}) {
    auto r = run_gpo(models::make_cyclic_scheduler(n), GetParam());
    EXPECT_FALSE(r.deadlock_found);
    EXPECT_FALSE(r.bailed_to_classical);
    EXPECT_LE(r.state_count, n + 2);
  }
}

TEST_P(BothFamilies, CounterexampleReplaysIntoWitness) {
  for (auto make : {+[] { return models::make_nsdp(4); },
                    +[] { return models::make_conflict_chain(5); },
                    +[] { return models::make_diamond(4); },
                    +[] { return models::make_fig7(); }}) {
    PetriNet net = make();
    auto r = run_gpo(net, GetParam());
    ASSERT_TRUE(r.deadlock_found) << net.name();
    ASSERT_FALSE(r.counterexample.empty()) << net.name();
    petri::Marking m = net.initial_marking();
    for (petri::TransitionId t : r.counterexample) {
      ASSERT_TRUE(net.enabled(t, m)) << net.name();
      m = net.fire(t, m);
    }
    EXPECT_EQ(m, *r.deadlock_witness) << net.name();
    EXPECT_TRUE(net.is_deadlocked(m)) << net.name();
  }
}

TEST(GpoCounterexample, RandomNetsReplay) {
  for (std::uint64_t seed = 1100; seed < 1160; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 3;
    p.states_per_machine = 3;
    p.transitions = 5 + seed % 10;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    GpoOptions opt;
    opt.max_seconds = 20;
    auto r = run_gpo(net, FamilyKind::kExplicit, opt);
    if (!r.deadlock_found || r.limit_hit) continue;
    if (r.counterexample.empty()) continue;  // delegated detection
    petri::Marking m = net.initial_marking();
    for (petri::TransitionId t : r.counterexample) {
      ASSERT_TRUE(net.enabled(t, m)) << "seed=" << seed;
      m = net.fire(t, m);
    }
    EXPECT_EQ(m, *r.deadlock_witness) << "seed=" << seed;
    EXPECT_TRUE(net.is_deadlocked(m)) << "seed=" << seed;
  }
}

TEST(GpoFamilies, ExplicitAndBddAgreeOnModels) {
  for (auto make : {+[] { return models::make_nsdp(4); },
                    +[] { return models::make_arbiter_tree(4); },
                    +[] { return models::make_overtake(4); },
                    +[] { return models::make_readers_writers(6); },
                    +[] { return models::make_conflict_chain(6); }}) {
    PetriNet net = make();
    auto e = run_gpo(net, FamilyKind::kExplicit);
    auto b = run_gpo(net, FamilyKind::kBdd);
    EXPECT_EQ(e.state_count, b.state_count) << net.name();
    EXPECT_EQ(e.deadlock_found, b.deadlock_found) << net.name();
    EXPECT_EQ(e.multiple_steps, b.multiple_steps) << net.name();
    EXPECT_EQ(e.single_steps, b.single_steps) << net.name();
  }
}

TEST(GpoExplicit, ThrowsPastR0CapAndBddDoesNot) {
  PetriNet net = models::make_conflict_chain(24);  // 2^24 maximal sets
  EXPECT_THROW((void)run_gpo(net, FamilyKind::kExplicit),
               std::length_error);
  auto r = run_gpo(net, FamilyKind::kBdd);
  EXPECT_EQ(r.state_count, 2u);
}

}  // namespace
}  // namespace gpo::core
