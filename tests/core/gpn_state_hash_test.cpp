// Regression suite for the memoized GpnState content hash: hash() must be
// indistinguishable from the uncached fold, and the memo must not leak
// through the copy-then-mutate pattern the engines use.
#include <gtest/gtest.h>

#include "core/gpn_analyzer.hpp"
#include "core/set_family.hpp"
#include "models/models.hpp"

namespace gpo::core {
namespace {

using State = GpnState<ExplicitFamily>;

State sample_state(const petri::PetriNet& net, ExplicitFamily::Context& ctx) {
  petri::ConflictInfo conflicts(net);
  GpnAnalyzer<ExplicitFamily> an(net, ctx, {});
  return an.initial_state();
}

TEST(GpnStateHash, MemoizedHashEqualsUncachedComputation) {
  petri::PetriNet net = models::make_nsdp(4);
  ExplicitFamily::Context ctx(net.transition_count());
  GpnAnalyzer<ExplicitFamily> an(net, ctx, {});

  State s = an.initial_state();
  const std::size_t uncached = s.uncached_hash();
  EXPECT_EQ(s.hash(), uncached);
  // Second call hits the memo; still the same value.
  EXPECT_EQ(s.hash(), uncached);

  // Successors along both firing rules agree too.
  auto enabled = an.single_enabled_transitions(s);
  ASSERT_FALSE(enabled.empty());
  State succ = an.s_update(s, enabled.front());
  EXPECT_EQ(succ.hash(), succ.uncached_hash());
  EXPECT_EQ(succ.hash(), succ.uncached_hash());
}

TEST(GpnStateHash, CopyResetsTheMemoMoveKeepsIt) {
  petri::PetriNet net = models::make_fig7();
  ExplicitFamily::Context ctx(net.transition_count());
  State s = sample_state(net, ctx);
  const std::size_t h = s.hash();  // warm the memo

  // Copy + mutate: the copy must not inherit the stale memo.
  State copy(s);
  copy.marking[0] = ctx.empty();
  EXPECT_EQ(copy.hash(), copy.uncached_hash());
  EXPECT_NE(copy.hash(), h);  // content changed, hash follows

  // Move preserves the memo along with the content.
  State moved(std::move(s));
  EXPECT_EQ(moved.hash(), h);
  EXPECT_EQ(moved.hash(), moved.uncached_hash());

  // Same for the assignment operators.
  State assigned = sample_state(net, ctx);
  assigned = copy;
  assigned.r = ctx.empty();
  EXPECT_EQ(assigned.hash(), assigned.uncached_hash());
}

TEST(GpnStateHash, EqualStatesHashEqual) {
  petri::PetriNet net = models::make_conflict_chain(5);
  ExplicitFamily::Context ctx(net.transition_count());
  GpnAnalyzer<ExplicitFamily> an(net, ctx, {});
  State a = an.initial_state();
  State b = an.initial_state();
  ASSERT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

}  // namespace
}  // namespace gpo::core
