// Parity suite for the ZDD family backend: run_gpo with
// FamilyStore::kZdd must be observationally identical to the seed
// ExplicitFamily path — same state counts, step mix, verdicts and
// fireability sets — on the paper's models and on random nets. The one
// sanctioned divergence is *which* witness/counterexample is reported: the
// ZDD enumerates members in diagram DFS order, not ExplicitFamily's sorted
// order, so those are validated by replay instead of compared bitwise.
#include <gtest/gtest.h>

#include "core/gpo.hpp"
#include "models/models.hpp"

namespace gpo::core {
namespace {

using petri::PetriNet;

void expect_zdd_parity(const PetriNet& net, const GpoOptions& base = {}) {
  auto seed = run_gpo(net, FamilyKind::kExplicit, base);
  GpoOptions zopt = base;
  zopt.family_store = FamilyStore::kZdd;
  auto zdd = run_gpo(net, FamilyKind::kExplicit, zopt);

  EXPECT_EQ(seed.state_count, zdd.state_count) << net.name();
  EXPECT_EQ(seed.edge_count, zdd.edge_count) << net.name();
  EXPECT_EQ(seed.multiple_steps, zdd.multiple_steps) << net.name();
  EXPECT_EQ(seed.single_steps, zdd.single_steps) << net.name();
  EXPECT_EQ(seed.deadlock_found, zdd.deadlock_found) << net.name();
  EXPECT_EQ(seed.bailed_to_classical, zdd.bailed_to_classical) << net.name();
  EXPECT_EQ(seed.ignoring_expansions, zdd.ignoring_expansions) << net.name();
  EXPECT_EQ(seed.fireable_transitions, zdd.fireable_transitions)
      << net.name();

  // Witness parity by replay: the ZDD's counterexample must drive the net
  // into a real deadlock whenever the seed found one.
  EXPECT_EQ(seed.deadlock_witness.has_value(),
            zdd.deadlock_witness.has_value())
      << net.name();
  if (zdd.deadlock_found && !zdd.counterexample.empty()) {
    petri::Marking m = net.initial_marking();
    for (petri::TransitionId t : zdd.counterexample) {
      ASSERT_TRUE(net.enabled(t, m)) << net.name();
      m = net.fire(t, m);
    }
    EXPECT_TRUE(net.is_deadlocked(m)) << net.name();
    if (zdd.deadlock_witness) {
      EXPECT_EQ(m, *zdd.deadlock_witness) << net.name();
    }
  }

  // Only the ZDD path reports zdd-flavoured family stats.
  EXPECT_FALSE(seed.family_stats.available) << net.name();
  ASSERT_TRUE(zdd.family_stats.available) << net.name();
  EXPECT_EQ(zdd.family_stats.backend, "zdd") << net.name();
  EXPECT_GT(zdd.family_stats.zdd_nodes, 0u) << net.name();
  EXPECT_GT(zdd.family_stats.families_bytes, 0u) << net.name();
  EXPECT_EQ(zdd.family_stats.distinct_families, 0u) << net.name();
}

TEST(GpoZddParity, PaperModels) {
  expect_zdd_parity(models::make_diamond(5));
  expect_zdd_parity(models::make_conflict_chain(6));
  expect_zdd_parity(models::make_nsdp(4));
  expect_zdd_parity(models::make_arbiter_tree(4));
  expect_zdd_parity(models::make_readers_writers(6));
  expect_zdd_parity(models::make_fig3());
  expect_zdd_parity(models::make_fig5());
  expect_zdd_parity(models::make_fig7());
}

TEST(GpoZddParity, GuardAndDelegationPathsAgree) {
  expect_zdd_parity(models::make_overtake(4));
  GpoOptions opt;
  opt.delegate_after_states = 500;
  expect_zdd_parity(models::make_slotted_ring(3), opt);
}

TEST(GpoZddParity, StopAtFirstDeadlockAndWitnessFilter) {
  GpoOptions opt;
  opt.stop_at_first_deadlock = true;
  expect_zdd_parity(models::make_nsdp(4), opt);

  PetriNet net = models::make_nsdp(3);
  GpoOptions filt;
  filt.required_witness_place = net.find_place("hasL_0");
  expect_zdd_parity(net, filt);
}

TEST(GpoZddParity, ZddAppliesToInternedKindToo) {
  // family_store=kZdd replaces the storage of both explicit-family kinds;
  // the verdict must not depend on which one the caller started from.
  PetriNet net = models::make_nsdp(4);
  GpoOptions zopt;
  zopt.family_store = FamilyStore::kZdd;
  auto via_explicit = run_gpo(net, FamilyKind::kExplicit, zopt);
  auto via_interned = run_gpo(net, FamilyKind::kInterned, zopt);
  EXPECT_EQ(via_explicit.state_count, via_interned.state_count);
  EXPECT_EQ(via_explicit.deadlock_found, via_interned.deadlock_found);
  EXPECT_EQ(via_interned.family_stats.backend, "zdd");
}

TEST(GpoZddParity, BddKindIgnoresFamilyStore) {
  // kBdd keeps its own symbolic representation; asking for zdd storage on
  // it must be a no-op, not an error.
  PetriNet net = models::make_fig7();
  GpoOptions zopt;
  zopt.family_store = FamilyStore::kZdd;
  auto r = run_gpo(net, FamilyKind::kBdd, zopt);
  EXPECT_TRUE(r.deadlock_found);
  EXPECT_EQ(r.state_count, 3u);
}

TEST(GpoZddParity, RandomNets) {
  for (std::uint64_t seed = 4400; seed < 4460; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 3;
    p.states_per_machine = 3;
    p.transitions = 5 + seed % 10;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    GpoOptions opt;
    opt.max_seconds = 20;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_zdd_parity(net, opt);
  }
}

}  // namespace
}  // namespace gpo::core
