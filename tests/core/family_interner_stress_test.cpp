// Lock-free FamilyInterner stress tests: concurrent insert agreement, table
// growth under racing inserters, no lost inserts across migration, and
// op-cache statistics aggregation at join. Labeled `parallel` so the TSan CI
// leg checks the CAS protocol's memory ordering for real, not just its
// outcomes.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/family_interner.hpp"

namespace gpo::core {
namespace {

// Distinct index -> distinct family: the index's bits become one member set,
// so the stream never repeats (the universe must cover the index range).
ExplicitFamily family_for(const ExplicitFamily::Context& ctx, std::uint64_t i) {
  ++i;  // keep index 0 off the empty set
  TransitionSet s(ctx.num_transitions());
  for (std::size_t b = 0; b < ctx.num_transitions(); ++b)
    if ((i >> b) & 1u) s.set(b);
  return ctx.single(s);
}

// 8 threads intern the same deterministic stream concurrently: every thread
// must observe the same id for the same family (the unique table never
// splits a value across ids), and no insert may be lost.
TEST(FamilyInternerStress, ConcurrentInsertIdAgreement) {
  constexpr std::size_t kTransitions = 16;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kStream = 500;
  FamilyInterner interner(kTransitions, /*op_cache_entries=*/1 << 10);
  ExplicitFamily::Context ctx(kTransitions);

  std::vector<std::vector<FamilyId>> ids(kThreads);
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      ids[w].reserve(kStream);
      for (std::uint64_t i = 0; i < kStream; ++i)
        ids[w].push_back(interner.intern(family_for(ctx, i)));
    });
  }
  for (std::thread& t : pool) t.join();

  for (std::size_t w = 1; w < kThreads; ++w) EXPECT_EQ(ids[w], ids[0]);

  // No lost inserts: every id in the agreed stream resolves to a family
  // that re-interns to the same id, and ids are dense in [0, size).
  const std::size_t n = interner.size();
  for (FamilyId id : ids[0]) {
    ASSERT_LT(id, n);
    EXPECT_EQ(interner.intern(interner.family(id)), id);
  }
}

// A deliberately tiny initial table (4 slots) forces growth migrations to
// race the inserters. Every distinct family must keep exactly one id across
// however many generations the table went through.
TEST(FamilyInternerStress, TableGrowthRaceKeepsIdsUnique) {
  constexpr std::size_t kTransitions = 24;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 400;
  FamilyInterner interner(kTransitions, /*op_cache_entries=*/1 << 10,
                          /*initial_table_capacity=*/4);
  ExplicitFamily::Context ctx(kTransitions);

  // Each thread alternates a shared stream (every thread contests the same
  // families, racing claims) with a thread-private stream (steady pressure
  // that keeps tripping the load factor mid-race).
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        interner.intern(family_for(ctx, i));
        interner.intern(family_for(ctx, 10000 + w * kPerThread + i));
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_GT(interner.unique_table_growths(), 0u);
  EXPECT_GE(interner.unique_table_capacity(), interner.size());

  // No duplicate ids: re-interning every stored family returns its own id
  // (a lost insert or a double insert would break one of these).
  const std::size_t n = interner.size();
  ASSERT_GT(n, kPerThread);
  for (FamilyId id = 0; id < n; ++id)
    ASSERT_EQ(interner.intern(interner.family(id)), id) << "id " << id;

  FamilyInternerStats s = interner.stats();
  EXPECT_EQ(s.distinct_families, n);
  EXPECT_GE(s.intern_calls, s.distinct_families);
}

// Per-thread op caches: every thread runs the same op stream, then the
// joined stats() must aggregate all threads' counters (hits+misses equals
// the total op count, every thread's cache is represented).
TEST(FamilyInternerStress, OpCacheStatsAggregateAtJoin) {
  constexpr std::size_t kTransitions = 12;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kOps = 300;
  FamilyInterner interner(kTransitions, /*op_cache_entries=*/1 << 12);

  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < kThreads; ++w) {
    pool.emplace_back([&] {
      TransitionSet a(kTransitions), b(kTransitions);
      a.set(1);
      b.set(2);
      FamilyId fa = interner.from_sets({a});
      FamilyId fb = interner.from_sets({b});
      for (std::uint64_t i = 0; i < kOps; ++i) {
        FamilyId u = interner.unite(fa, fb);
        FamilyId n = interner.intersect(u, fa);
        ASSERT_EQ(n, fa);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(interner.op_cache_thread_count(), kThreads);
  FamilyInternerStats s = interner.stats();
  // 2 cached ops per iteration per thread; each thread misses each distinct
  // (op, a, b) once and hits thereafter, so hits dominate and the totals add
  // up exactly across the join.
  EXPECT_EQ(s.op_cache_hits + s.op_cache_misses, kThreads * kOps * 2);
  EXPECT_GE(s.op_cache_hits, kThreads * (kOps - 1) * 2);
  EXPECT_EQ(s.op_cache_evictions, 0u);
}

}  // namespace
}  // namespace gpo::core
