// Walks the GPN semantics through the paper's own Section-3 examples
// (Figures 3 through 7) and checks the structural invariants the formalism
// promises: consistency of single/multiple firing with classical dynamics via
// mapping(), the extended-conflict conditioning of r, and the deadlock
// characterization.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/gpn_analyzer.hpp"
#include "models/models.hpp"
#include "petri/builder.hpp"
#include "reach/explorer.hpp"

namespace gpo::core {
namespace {

using petri::Marking;
using petri::PetriNet;
using petri::TransitionId;

template <typename F>
class GpnSemantics : public ::testing::Test {};

using FamilyTypes = ::testing::Types<ExplicitFamily, BddFamily>;
TYPED_TEST_SUITE(GpnSemantics, FamilyTypes);

template <typename F>
TransitionSet make_v(const PetriNet& net,
                     std::initializer_list<const char*> names) {
  TransitionSet v(net.transition_count());
  for (const char* n : names) v.set(net.find_transition(n));
  return v;
}

TYPED_TEST(GpnSemantics, InitialStateMapsToInitialMarking) {
  // Section 3.3: mapping(<m0G, r0>) = {m0}.
  for (auto make : {+[] { return models::make_fig7(); },
                    +[] { return models::make_nsdp(3); },
                    +[] { return models::make_readers_writers(3); }}) {
    PetriNet net = make();
    typename TypeParam::Context ctx(net.transition_count());
    GpnAnalyzer<TypeParam> an(net, ctx);
    auto maps = an.mapping(an.initial_state());
    ASSERT_EQ(maps.size(), 1u) << net.name();
    EXPECT_EQ(maps[0], net.initial_marking()) << net.name();
  }
}

TYPED_TEST(GpnSemantics, Fig7MultipleEnabling) {
  // The worked example of Definition 3.5:
  //   m_enabled(A) = {{A,C},{A,D}},  m_enabled(B) = {{B,C},{B,D}}.
  PetriNet net = models::make_fig7();
  typename TypeParam::Context ctx(net.transition_count());
  GpnAnalyzer<TypeParam> an(net, ctx);
  auto s0 = an.initial_state();

  TransitionId A = net.find_transition("A");
  TransitionId B = net.find_transition("B");
  TransitionId C = net.find_transition("C");
  TransitionId D = net.find_transition("D");

  auto meA = an.m_enabled(A, s0);
  EXPECT_EQ(meA.count(), 2.0);
  EXPECT_TRUE(meA.contains(make_v<TypeParam>(net, {"A", "C"})));
  EXPECT_TRUE(meA.contains(make_v<TypeParam>(net, {"A", "D"})));
  auto meB = an.m_enabled(B, s0);
  EXPECT_TRUE(meB.contains(make_v<TypeParam>(net, {"B", "C"})));
  EXPECT_TRUE(meB.contains(make_v<TypeParam>(net, {"B", "D"})));
  // C and D are not yet enabled at all.
  EXPECT_TRUE(an.s_enabled(C, s0).is_empty());
  EXPECT_TRUE(an.m_enabled(D, s0).is_empty());
}

TYPED_TEST(GpnSemantics, Fig7ExtendedConflict) {
  // Firing {A,B} then {C,D} must condition the valid sets down to
  // r2 = {{A,C},{B,D}} — the paper's "extended conflict" between A/D and B/C.
  PetriNet net = models::make_fig7();
  typename TypeParam::Context ctx(net.transition_count());
  GpnAnalyzer<TypeParam> an(net, ctx);
  auto s0 = an.initial_state();

  TransitionId A = net.find_transition("A");
  TransitionId B = net.find_transition("B");
  TransitionId C = net.find_transition("C");
  TransitionId D = net.find_transition("D");

  auto s1 = an.m_update(s0, {A, B});
  // r1 = r0: nothing ruled out yet.
  EXPECT_EQ(s1.r, s0.r);
  // p1 holds the A-histories, p2 the B-histories.
  auto p1 = net.find_place("p1");
  auto p2 = net.find_place("p2");
  EXPECT_EQ(s1.marking[p1], an.m_enabled(A, s0));
  EXPECT_EQ(s1.marking[p2], an.m_enabled(B, s0));

  ASSERT_FALSE(an.m_enabled(C, s1).is_empty());
  ASSERT_FALSE(an.m_enabled(D, s1).is_empty());
  auto s2 = an.m_update(s1, {C, D});
  EXPECT_EQ(s2.r.count(), 2.0);
  EXPECT_TRUE(s2.r.contains(make_v<TypeParam>(net, {"A", "C"})));
  EXPECT_TRUE(s2.r.contains(make_v<TypeParam>(net, {"B", "D"})));
  EXPECT_FALSE(s2.r.contains(make_v<TypeParam>(net, {"A", "D"})));
  EXPECT_FALSE(s2.r.contains(make_v<TypeParam>(net, {"B", "C"})));

  // mapping(s2) = {{p4, p5}}: under {A,C}, token in p4; under {B,D}, in p5 —
  // two valid sets, one classical marking each.
  auto maps = an.mapping(s2);
  Marking m45(net.place_count());
  m45.set(net.find_place("p4"));
  Marking m55(net.place_count());
  m55.set(net.find_place("p5"));
  ASSERT_EQ(maps.size(), 2u);
  EXPECT_NE(std::find(maps.begin(), maps.end(), m45), maps.end());
  EXPECT_NE(std::find(maps.begin(), maps.end(), m55), maps.end());
}

TYPED_TEST(GpnSemantics, Fig7MappingCoversClassicalReachability) {
  // Union of mapping() over the three GPN states = the classical reachable
  // set of the net.
  PetriNet net = models::make_fig7();
  typename TypeParam::Context ctx(net.transition_count());
  GpnAnalyzer<TypeParam> an(net, ctx);
  auto s0 = an.initial_state();
  auto s1 = an.m_update(s0, {net.find_transition("A"), net.find_transition("B")});
  auto s2 = an.m_update(s1, {net.find_transition("C"), net.find_transition("D")});

  std::vector<Marking> covered;
  for (const auto* s : {&s0, &s1, &s2})
    for (Marking& m : an.mapping(*s))
      if (std::find(covered.begin(), covered.end(), m) == covered.end())
        covered.push_back(std::move(m));

  reach::ExplorerOptions eo;
  eo.build_graph = true;
  auto ground = reach::ExplicitExplorer(net, eo).explore();
  EXPECT_EQ(covered.size(), ground.state_count);
}

TYPED_TEST(GpnSemantics, Fig3ColorBlockingOfD) {
  // Figure 3's point: after firing A and B simultaneously, D's input places
  // hold mutually conflicting colors, so D must not become multiple-enabled,
  // while C (both inputs colored by A) fires.
  PetriNet net = models::make_fig3();
  typename TypeParam::Context ctx(net.transition_count());
  GpnAnalyzer<TypeParam> an(net, ctx);
  auto s0 = an.initial_state();
  TransitionId A = net.find_transition("A");
  TransitionId B = net.find_transition("B");
  TransitionId C = net.find_transition("C");
  TransitionId D = net.find_transition("D");

  auto s1 = an.m_update(s0, {A, B});
  EXPECT_FALSE(an.m_enabled(C, s1).is_empty());
  EXPECT_TRUE(an.m_enabled(D, s1).is_empty());
  EXPECT_TRUE(an.s_enabled(D, s1).is_empty());

  // The deadlock characterization flags the B-branch (token stuck in p4).
  auto witness = an.deadlock_witness(s1);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(net.is_deadlocked(*witness));
  EXPECT_TRUE(witness->test(net.find_place("p4")));
}

TYPED_TEST(GpnSemantics, Fig5SingleFiring) {
  // Figure 5: m(p0) = {{A},{B}}, m(p1) = {{A}}, r = {{A},{B}}. A is
  // single-enabled with {{A}}, B is not; firing A moves {{A}} to p3.
  PetriNet net = models::make_fig5();
  typename TypeParam::Context ctx(net.transition_count());
  GpnAnalyzer<TypeParam> an(net, ctx);

  TransitionId A = net.find_transition("A");
  TransitionId B = net.find_transition("B");
  TransitionSet vA = make_v<TypeParam>(net, {"A"});
  TransitionSet vB = make_v<TypeParam>(net, {"B"});

  GpnState<TypeParam> s{
      std::vector<TypeParam>(net.place_count(), ctx.empty()),
      ctx.from_sets({vA, vB})};
  s.marking[net.find_place("p0")] = ctx.from_sets({vA, vB});
  s.marking[net.find_place("p1")] = ctx.single(vA);
  s.marking[net.find_place("p2")] = ctx.single(vB);

  auto eA = an.s_enabled(A, s);
  EXPECT_EQ(eA, ctx.single(vA));
  auto eB = an.s_enabled(B, s);
  EXPECT_EQ(eB, ctx.single(vB));

  auto s2 = an.s_update(s, A);
  EXPECT_EQ(s2.r, s.r);  // single firing leaves r untouched
  EXPECT_EQ(s2.marking[net.find_place("p0")], ctx.single(vB));
  EXPECT_TRUE(s2.marking[net.find_place("p1")].is_empty());
  EXPECT_EQ(s2.marking[net.find_place("p3")], ctx.single(vA));
  // Figure 6: mapping before = {{p0,p1},{p0,p2}}, after = {{p3},{p0,p2}}.
  auto before = an.mapping(s);
  auto after = an.mapping(s2);
  EXPECT_EQ(before.size(), 2u);
  EXPECT_EQ(after.size(), 2u);
  Marking m_p3(net.place_count());
  m_p3.set(net.find_place("p3"));
  EXPECT_NE(std::find(after.begin(), after.end(), m_p3), after.end());
  (void)B;
}

TYPED_TEST(GpnSemantics, SingleFiringConsistentWithClassical) {
  // For every v in r and every transition enabled under v, the classical
  // firing of t from m_v equals m_v evaluated in the s_update successor —
  // the "consistency" the paper argues below Definition 3.3.
  PetriNet net = models::make_nsdp(2);
  typename TypeParam::Context ctx(net.transition_count());
  GpnAnalyzer<TypeParam> an(net, ctx);
  auto s0 = an.initial_state();

  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    auto en = an.s_enabled(t, s0);
    if (en.is_empty()) continue;
    auto s1 = an.s_update(s0, t);
    for (const TransitionSet& v : en.members(50)) {
      Marking before(net.place_count());
      Marking after(net.place_count());
      for (petri::PlaceId p = 0; p < net.place_count(); ++p) {
        if (s0.marking[p].contains(v)) before.set(p);
        if (s1.marking[p].contains(v)) after.set(p);
      }
      ASSERT_TRUE(net.enabled(t, before));
      EXPECT_EQ(after, net.fire(t, before));
    }
  }
}

TYPED_TEST(GpnSemantics, MultipleEnabledImpliesSingleEnabled) {
  // Noted in the paper below Definition 3.5; the converse fails.
  PetriNet net = models::make_nsdp(2);
  typename TypeParam::Context ctx(net.transition_count());
  GpnAnalyzer<TypeParam> an(net, ctx);
  auto s = an.initial_state();
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    if (!an.m_enabled(t, s).is_empty()) {
      EXPECT_FALSE(an.s_enabled(t, s).is_empty());
    }
  }
}

TYPED_TEST(GpnSemantics, MarkingsStaySubsetsOfR) {
  // State invariant used throughout: m(p) ⊆ r.
  PetriNet net = models::make_fig7();
  typename TypeParam::Context ctx(net.transition_count());
  GpnAnalyzer<TypeParam> an(net, ctx);
  auto s0 = an.initial_state();
  auto s1 = an.m_update(s0, {net.find_transition("A"), net.find_transition("B")});
  auto s2 = an.m_update(s1, {net.find_transition("C"), net.find_transition("D")});
  for (const auto* s : {&s0, &s1, &s2})
    for (petri::PlaceId p = 0; p < net.place_count(); ++p)
      EXPECT_TRUE(s->marking[p].subtract(s->r).is_empty());
}

TYPED_TEST(GpnSemantics, MappingSoundnessOnRandomNets) {
  // The mapping theorem: every classical marking represented by any
  // reachable GPN state is classically reachable. Checked by exploring the
  // GPN graph manually and testing each mapped marking for membership in
  // the ground-truth reachable set.
  for (std::uint64_t seed = 1500; seed < 1512; ++seed) {
    models::RandomNetParams params;
    params.machines = 2;
    params.states_per_machine = 3;
    params.transitions = 4 + seed % 6;
    params.seed = seed;
    PetriNet net = models::make_random_net(params);

    std::set<Marking> reachable;
    reach::ExplorerOptions eo;
    eo.max_states = 100000;
    eo.bad_state = [&](const Marking& m) {
      reachable.insert(m);
      return false;
    };
    if (reach::ExplicitExplorer(net, eo).explore().limit_hit) continue;

    typename TypeParam::Context ctx(net.transition_count());
    GpnAnalyzer<TypeParam> an(net, ctx);
    // Breadth-first over GPN states via the public semantics, following the
    // same expansion policy as the engine.
    std::vector<GpnState<TypeParam>> states{an.initial_state()};
    std::set<std::size_t> seen{states[0].hash()};
    for (std::size_t i = 0; i < states.size() && states.size() < 3000; ++i) {
      for (const Marking& m : an.mapping(states[i]))
        EXPECT_TRUE(reachable.contains(m))
            << "seed=" << seed << " unmapped marking "
            << reach::marking_to_string(net, m);
      auto sen = an.single_enabled_transitions(states[i]);
      if (sen.empty()) continue;
      auto plan = an.plan_expansion(states[i], sen);
      std::vector<GpnState<TypeParam>> next;
      if (plan.multiple) {
        next.push_back(an.m_update(states[i], plan.transitions));
      } else {
        for (petri::TransitionId t : plan.transitions)
          next.push_back(an.s_update(states[i], t));
      }
      for (auto& s : next)
        if (seen.insert(s.hash()).second) states.push_back(std::move(s));
    }
  }
}

TYPED_TEST(GpnSemantics, DeadlockCharacterizationOnDeadNet) {
  // A net whose only transition already fired: every valid set is dead.
  petri::NetBuilder b;
  auto p0 = b.add_place("p0", true);
  auto p1 = b.add_place("p1");
  auto t = b.add_transition("t");
  b.connect(t, {p0}, {p1});
  PetriNet net = b.build();
  typename TypeParam::Context ctx(net.transition_count());
  GpnAnalyzer<TypeParam> an(net, ctx);
  auto s0 = an.initial_state();
  EXPECT_FALSE(an.deadlock_witness(s0).has_value());
  auto s1 = an.s_update(s0, 0);
  auto witness = an.deadlock_witness(s1);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->test(p1));
  EXPECT_FALSE(witness->test(p0));
}

}  // namespace
}  // namespace gpo::core
