// Determinism cross-checks for the fork-join GPO engine: on every model,
// the parallel interned path (2/4/8 threads) must produce the same verdict,
// state/edge counts, step mix and fireability as the sequential path, and
// any reported counterexample must replay to the witness under the classical
// firing rule. Labeled `parallel` so the TSan CI leg races it for real.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/family_interner.hpp"
#include "core/gpo.hpp"
#include "models/models.hpp"

namespace gpo::core {
namespace {

using petri::PetriNet;

void expect_replayable(const PetriNet& net, const GpoResult& r) {
  if (!r.deadlock_found || r.counterexample.empty()) return;
  petri::Marking m = net.initial_marking();
  for (petri::TransitionId t : r.counterexample) {
    ASSERT_TRUE(net.enabled(t, m)) << net.name();
    m = net.fire(t, m);
  }
  ASSERT_TRUE(r.deadlock_witness.has_value()) << net.name();
  EXPECT_EQ(m, *r.deadlock_witness) << net.name();
  EXPECT_TRUE(net.is_deadlocked(m)) << net.name();
}

/// Runs the sequential engine once and the parallel engine at 2/4/8 threads;
/// everything except the choice of counterexample must match exactly.
void expect_thread_invariance(const PetriNet& net, GpoOptions opt = {},
                              bool exact_counts = true) {
  auto seq = run_gpo(net, FamilyKind::kInterned, opt);
  EXPECT_EQ(seq.parallel.threads, 0u) << net.name();
  expect_replayable(net, seq);

  for (std::size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(std::string(net.name()) + " threads=" +
                 std::to_string(threads));
    GpoOptions popt = opt;
    popt.num_threads = threads;
    auto par = run_gpo(net, FamilyKind::kInterned, popt);

    EXPECT_EQ(par.deadlock_found, seq.deadlock_found);
    EXPECT_EQ(par.bailed_to_classical, seq.bailed_to_classical);
    EXPECT_EQ(par.limit_hit, seq.limit_hit);
    if (exact_counts) {
      EXPECT_EQ(par.state_count, seq.state_count);
      EXPECT_EQ(par.edge_count, seq.edge_count);
      EXPECT_EQ(par.multiple_steps, seq.multiple_steps);
      EXPECT_EQ(par.single_steps, seq.single_steps);
      EXPECT_EQ(par.ignoring_expansions, seq.ignoring_expansions);
      EXPECT_EQ(par.fireable_transitions, seq.fireable_transitions);
    }
    if (seq.deadlock_found) {
      EXPECT_TRUE(par.witness_is_dead || par.bailed_to_classical ||
                  par.delegated_states > 0);
    }
    expect_replayable(net, par);

    // The parallel engine must report its own counters...
    EXPECT_EQ(par.parallel.threads, threads);
    EXPECT_GE(par.parallel.shard_count, 16u);
    EXPECT_GE(par.parallel.peak_frontier, 1u);
    // ...and the shared interner stats stay coherent after the join.
    ASSERT_TRUE(par.family_stats.available);
    EXPECT_GE(par.family_stats.intern_calls,
              par.family_stats.distinct_families);
  }
}

TEST(ParallelGpo, Table1Models) {
  expect_thread_invariance(models::make_nsdp(5));
  expect_thread_invariance(models::make_arbiter_tree(4));
  expect_thread_invariance(models::make_overtake(4));
  expect_thread_invariance(models::make_readers_writers(8));
}

TEST(ParallelGpo, ExampleNets) {
  expect_thread_invariance(models::make_fig3());
  expect_thread_invariance(models::make_fig5());
  expect_thread_invariance(models::make_fig7());
  expect_thread_invariance(models::make_diamond(6));
  expect_thread_invariance(models::make_conflict_chain(7));
}

TEST(ParallelGpo, RandomNets) {
  for (std::uint64_t seed = 5100; seed < 5160; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 3;
    p.states_per_machine = 3;
    p.transitions = 5 + seed % 10;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    GpoOptions opt;
    opt.max_seconds = 60;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    // Exact counts are only meaningful for searches that fully drain: past
    // the fragmentation threshold the stopping point (and hence the bail
    // handoff) is scheduling-dependent by design. Probe sequentially first
    // and skip the degenerate seeds (also keeps the TSan leg fast).
    auto probe = run_gpo(net, FamilyKind::kInterned, opt);
    if (probe.bailed_to_classical || probe.limit_hit ||
        probe.state_count > 30000)
      continue;
    expect_thread_invariance(net, opt);
  }
}

TEST(ParallelGpo, BailOutDelegatesLikeSequential) {
  // Force the fragmentation bail-out: the verdict must still match, but the
  // exact state count at which each engine notices the threshold is
  // scheduling-dependent, so only the verdict is compared.
  GpoOptions opt;
  opt.delegate_after_states = 200;
  expect_thread_invariance(models::make_slotted_ring(3), opt,
                           /*exact_counts=*/false);
}

TEST(ParallelGpo, WitnessPlaceFilter) {
  PetriNet net = models::make_nsdp(4);
  GpoOptions opt;
  opt.required_witness_place = net.find_place("hasL_0");
  expect_thread_invariance(net, opt);
}

TEST(ParallelGpo, PerWorkerCountersSumToTotals) {
  PetriNet net = models::make_overtake(4);
  obs::MetricsRegistry reg;
  GpoOptions opt;
  opt.num_threads = 4;
  opt.metrics = &reg;
  opt.metrics_prefix = "t.";
  auto r = run_gpo(net, FamilyKind::kInterned, opt);

  double expansions = 0, steals = 0, edges = 0;
  for (std::size_t w = 0; w < 4; ++w) {
    const std::string p = "t.worker." + std::to_string(w) + ".";
    expansions += reg.value(p + "expansions").value_or(-1e9);
    steals += reg.value(p + "steals").value_or(-1e9);
    edges += reg.value(p + "edges").value_or(-1e9);
  }
  // Every expanded state was interned first, and every state is expanded
  // at most once (stop flags may leave a tail unexpanded).
  EXPECT_GE(expansions, 1.0);
  EXPECT_LE(expansions, static_cast<double>(r.state_count));
  EXPECT_EQ(edges, static_cast<double>(r.edge_count));
  EXPECT_EQ(steals, static_cast<double>(r.parallel.steal_count));
  EXPECT_EQ(reg.value("t.parallel.threads").value_or(0), 4.0);
}

// -- FamilyInterner under real concurrency ----------------------------------

TEST(ParallelGpo, ConcurrentInternersAgreeOnIds) {
  constexpr std::size_t kTransitions = 12;
  constexpr std::size_t kThreads = 8;
  FamilyInterner interner(kTransitions, /*op_cache_entries=*/1 << 10);
  ExplicitFamily::Context base(kTransitions);

  // Every thread interns the same deterministic stream of families (plus a
  // private one) and records the ids it got back.
  std::vector<std::vector<FamilyId>> shared_ids(kThreads);
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < 200; ++i) {
        TransitionSet a(kTransitions), b(kTransitions);
        a.set(i % kTransitions);
        a.set((i * 7 + 1) % kTransitions);
        b.set((i * 5 + 2) % kTransitions);
        FamilyId fa = interner.from_sets({a});
        FamilyId fb = interner.from_sets({b});
        FamilyId u = interner.unite(fa, fb);
        FamilyId n = interner.intersect(u, fa);
        shared_ids[w].push_back(u);
        shared_ids[w].push_back(n);
        // Algebra sanity under the race: fa ⊆ u, so u ∩ fa == fa.
        ASSERT_EQ(n, fa);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  // Same input stream => same ids on every thread (canonicalization held).
  for (std::size_t w = 1; w < kThreads; ++w)
    EXPECT_EQ(shared_ids[w], shared_ids[0]);

  // Ids are dense and every arena entry canonical: re-interning each stored
  // family returns its own id.
  const std::size_t n = interner.size();
  ASSERT_GT(n, 1u);
  for (FamilyId id = 0; id < n; ++id) {
    ExplicitFamily f = interner.family(id);
    EXPECT_EQ(interner.intern(std::move(f)), id);
  }

  FamilyInternerStats s = interner.stats();
  EXPECT_EQ(s.distinct_families, n);
  EXPECT_GE(s.intern_calls, s.distinct_families);
  EXPECT_GT(interner.op_cache_thread_count(), 0u);
}

}  // namespace
}  // namespace gpo::core
