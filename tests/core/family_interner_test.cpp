// FamilyInterner unit + property tests: hash-consing invariants (id
// stability, canonical arena), the memoized op cache (correctness under
// collisions/eviction, identical results with the cache disabled), and the
// stats counters the CLI/bench surface.
#include "core/family_interner.hpp"

#include <gtest/gtest.h>

#include <random>

#include "models/models.hpp"
#include "petri/conflict.hpp"

namespace gpo::core {
namespace {

TransitionSet ts(std::size_t n, std::initializer_list<std::size_t> bits) {
  return TransitionSet(n, bits);
}

TEST(FamilyInterner, EmptyFamilyIsPinnedToIdZero) {
  FamilyInterner in(4);
  EXPECT_EQ(in.size(), 1u);
  EXPECT_EQ(in.empty(), kEmptyFamilyId);
  EXPECT_TRUE(in.is_empty(kEmptyFamilyId));
  EXPECT_TRUE(in.family(kEmptyFamilyId).is_empty());
  ExplicitFamily::Context ectx(4);
  EXPECT_EQ(in.intern(ectx.empty()), kEmptyFamilyId);
  EXPECT_EQ(in.size(), 1u);  // dedup: nothing new stored
}

TEST(FamilyInterner, EqualContentGetsEqualId) {
  FamilyInterner in(4);
  FamilyId a = in.from_sets({ts(4, {0}), ts(4, {1})});
  FamilyId b = in.from_sets({ts(4, {1}), ts(4, {0})});  // different order
  EXPECT_EQ(a, b);
  FamilyId c = in.single(ts(4, {2}));
  EXPECT_NE(a, c);
  // Ids are stable across unrelated interning.
  FamilyId a2 = in.from_sets({ts(4, {0}), ts(4, {1})});
  EXPECT_EQ(a, a2);
}

TEST(FamilyInterner, HashIsCachedAtInternTime) {
  FamilyInterner in(4);
  FamilyId a = in.from_sets({ts(4, {0, 2}), ts(4, {1})});
  EXPECT_EQ(in.hash_of(a), in.family(a).hash());
}

TEST(FamilyInterner, OperationsMatchExplicitAlgebra) {
  FamilyInterner in(4);
  FamilyId ab = in.from_sets({ts(4, {0}), ts(4, {1})});
  FamilyId bc = in.from_sets({ts(4, {1}), ts(4, {2})});
  EXPECT_EQ(in.intersect(ab, bc), in.single(ts(4, {1})));
  EXPECT_EQ(in.unite(ab, bc),
            in.from_sets({ts(4, {0}), ts(4, {1}), ts(4, {2})}));
  EXPECT_EQ(in.subtract(ab, bc), in.single(ts(4, {0})));
  EXPECT_EQ(in.subtract(ab, ab), kEmptyFamilyId);
  EXPECT_EQ(in.containing(ab, 1), in.single(ts(4, {1})));
  EXPECT_EQ(in.containing(ab, 3), kEmptyFamilyId);
}

TEST(FamilyInterner, AlgebraicShortcutsBypassTheCache) {
  FamilyInterner in(4);
  FamilyId ab = in.from_sets({ts(4, {0}), ts(4, {1})});
  auto before = in.stats();
  // Identities resolved on ids alone: no cache traffic, no interning.
  EXPECT_EQ(in.intersect(ab, ab), ab);
  EXPECT_EQ(in.unite(ab, kEmptyFamilyId), ab);
  EXPECT_EQ(in.subtract(kEmptyFamilyId, ab), kEmptyFamilyId);
  EXPECT_EQ(in.containing(kEmptyFamilyId, 0), kEmptyFamilyId);
  auto after = in.stats();
  EXPECT_EQ(after.op_cache_hits, before.op_cache_hits);
  EXPECT_EQ(after.op_cache_misses, before.op_cache_misses);
  EXPECT_EQ(after.intern_calls, before.intern_calls);
}

TEST(FamilyInterner, OpCacheHitsOnRepeatAndOnSwappedCommutativeOperands) {
  FamilyInterner in(4);
  FamilyId ab = in.from_sets({ts(4, {0}), ts(4, {1})});
  FamilyId bc = in.from_sets({ts(4, {1}), ts(4, {2})});
  auto s0 = in.stats();
  FamilyId r1 = in.unite(ab, bc);
  FamilyId r2 = in.unite(bc, ab);  // commutative: canonical operand order
  FamilyId r3 = in.unite(ab, bc);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r3);
  auto s1 = in.stats();
  EXPECT_EQ(s1.op_cache_misses - s0.op_cache_misses, 1u);
  EXPECT_EQ(s1.op_cache_hits - s0.op_cache_hits, 2u);
}

TEST(FamilyInterner, TinyCacheEvictsButStaysCorrect) {
  // A 1-entry computed table forces every second op to evict; results must
  // still be identical because recomputation re-interns to the same id.
  FamilyInterner tiny(6, /*op_cache_entries=*/1);
  FamilyInterner big(6);
  std::mt19937 rng(7);
  std::vector<FamilyId> tp{kEmptyFamilyId}, bp{kEmptyFamilyId};
  for (int step = 0; step < 300; ++step) {
    std::size_t i = rng() % tp.size(), j = rng() % tp.size();
    switch (rng() % 5) {
      case 0: {
        TransitionSet s(6);
        for (std::size_t k = 0; k < 6; ++k)
          if (rng() % 2) s.set(k);
        tp.push_back(tiny.single(s));
        bp.push_back(big.single(s));
        break;
      }
      case 1:
        tp.push_back(tiny.unite(tp[i], tp[j]));
        bp.push_back(big.unite(bp[i], bp[j]));
        break;
      case 2:
        tp.push_back(tiny.intersect(tp[i], tp[j]));
        bp.push_back(big.intersect(bp[i], bp[j]));
        break;
      case 3:
        tp.push_back(tiny.subtract(tp[i], tp[j]));
        bp.push_back(big.subtract(bp[i], bp[j]));
        break;
      default: {
        petri::TransitionId t = rng() % 6;
        tp.push_back(tiny.containing(tp[i], t));
        bp.push_back(big.containing(bp[i], t));
        break;
      }
    }
    ASSERT_EQ(tiny.family(tp.back()).members(), big.family(bp.back()).members())
        << "step " << step;
  }
  EXPECT_EQ(tiny.op_cache_entries(), 1u);
}

// The headline property: random operation sequences through (a) a plain
// ExplicitFamily context, (b) an interner with the op cache enabled, and
// (c) an interner with the cache disabled. Contents must match (a), ids and
// arenas must be byte-identical between (b) and (c) — memoization must be
// invisible except in the counters.
TEST(FamilyInternerProperty, RandomOpsMatchExplicitAndCacheIsInvisible) {
  std::mt19937 rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 6;
    ExplicitFamily::Context ectx(n);
    FamilyInterner cached(n);
    FamilyInterner uncached(n);
    uncached.set_op_cache_enabled(false);

    auto random_set = [&]() {
      TransitionSet s(n);
      for (std::size_t i = 0; i < n; ++i)
        if (rng() % 2) s.set(i);
      return s;
    };

    std::vector<ExplicitFamily> epool{ectx.empty()};
    std::vector<FamilyId> cpool{kEmptyFamilyId}, upool{kEmptyFamilyId};
    for (int step = 0; step < 80; ++step) {
      std::size_t i = rng() % epool.size();
      std::size_t j = rng() % epool.size();
      switch (rng() % 5) {
        case 0: {
          TransitionSet s = random_set();
          epool.push_back(ectx.single(s));
          cpool.push_back(cached.single(s));
          upool.push_back(uncached.single(s));
          break;
        }
        case 1:
          epool.push_back(epool[i].unite(epool[j]));
          cpool.push_back(cached.unite(cpool[i], cpool[j]));
          upool.push_back(uncached.unite(upool[i], upool[j]));
          break;
        case 2:
          epool.push_back(epool[i].intersect(epool[j]));
          cpool.push_back(cached.intersect(cpool[i], cpool[j]));
          upool.push_back(uncached.intersect(upool[i], upool[j]));
          break;
        case 3:
          epool.push_back(epool[i].subtract(epool[j]));
          cpool.push_back(cached.subtract(cpool[i], cpool[j]));
          upool.push_back(uncached.subtract(upool[i], upool[j]));
          break;
        default: {
          petri::TransitionId t = rng() % n;
          epool.push_back(epool[i].containing(t));
          cpool.push_back(cached.containing(cpool[i], t));
          upool.push_back(uncached.containing(upool[i], t));
          break;
        }
      }
      // Contents identical to the plain algebra.
      ASSERT_EQ(cached.family(cpool.back()), epool.back())
          << "trial " << trial << " step " << step;
      // Cache-disabled run assigns the same id at every step.
      ASSERT_EQ(cpool.back(), upool.back())
          << "trial " << trial << " step " << step;
      // Interned equality == content equality against every pool member.
      for (std::size_t k = 0; k < epool.size(); ++k)
        ASSERT_EQ(cpool[k] == cpool.back(), epool[k] == epool.back());
    }

    // Arenas are byte-identical: same families in the same slots.
    ASSERT_EQ(cached.size(), uncached.size()) << "trial " << trial;
    for (FamilyId id = 0; id < cached.size(); ++id) {
      ASSERT_EQ(cached.family(id), uncached.family(id)) << "trial " << trial;
      ASSERT_EQ(cached.hash_of(id), uncached.hash_of(id));
    }
    ASSERT_EQ(cached.stats().families_bytes, uncached.stats().families_bytes);
    EXPECT_EQ(uncached.stats().op_cache_hits, 0u);
    EXPECT_EQ(uncached.stats().op_cache_misses, 0u);
  }
}

TEST(FamilyInterner, OccupancyAndEvictionCountersTrackTheCache) {
  // A 2-entry computed table: occupancy is bounded by the capacity, and a
  // long random op stream must overwrite live slots — evictions are the
  // signal the telemetry layer uses to flag an undersized cache.
  FamilyInterner in(6, /*op_cache_entries=*/2);
  std::mt19937 rng(11);
  std::vector<FamilyId> pool{kEmptyFamilyId};
  for (int step = 0; step < 200; ++step) {
    TransitionSet s(6);
    for (std::size_t k = 0; k < 6; ++k)
      if (rng() % 2) s.set(k);
    pool.push_back(in.single(s));
    (void)in.unite(pool[rng() % pool.size()], pool[rng() % pool.size()]);
  }
  auto s = in.stats();
  EXPECT_EQ(s.op_cache_capacity, 2u);
  EXPECT_LE(s.op_cache_occupied, s.op_cache_capacity);
  EXPECT_GT(s.op_cache_occupied, 0u);
  EXPECT_GT(s.op_cache_evictions, 0u);
  // Every store either filled an empty slot or displaced a different key.
  EXPECT_EQ(s.op_cache_misses >= s.op_cache_occupied + s.op_cache_evictions,
            true);

  // A comfortably sized cache on the same stream evicts nothing.
  FamilyInterner roomy(6, /*op_cache_entries=*/std::size_t{1} << 16);
  std::mt19937 rng2(11);
  std::vector<FamilyId> pool2{kEmptyFamilyId};
  for (int step = 0; step < 200; ++step) {
    TransitionSet s2(6);
    for (std::size_t k = 0; k < 6; ++k)
      if (rng2() % 2) s2.set(k);
    pool2.push_back(roomy.single(s2));
    (void)roomy.unite(pool2[rng2() % pool2.size()],
                      pool2[rng2() % pool2.size()]);
  }
  EXPECT_EQ(roomy.stats().op_cache_evictions, 0u);
  EXPECT_LE(roomy.stats().op_cache_occupied, roomy.stats().op_cache_capacity);
}

TEST(FamilyInterner, FillStatsSurfacesCacheGeometry) {
  InternedFamily::Context ctx(4);
  auto a = ctx.from_sets({ts(4, {0}), ts(4, {1})});
  auto b = ctx.single(ts(4, {1}));
  (void)a.unite(b);
  GpoFamilyStats out;
  ctx.fill_stats(out);
  EXPECT_EQ(out.backend, "interned");
  EXPECT_GT(out.op_cache_capacity, 0u);
  EXPECT_LE(out.op_cache_occupied, out.op_cache_capacity);
  EXPECT_EQ(out.op_cache_evictions, 0u);  // far from full on 3 ops
}

TEST(FamilyInterner, StatsCountersAreConsistent) {
  auto net = models::make_nsdp(3);
  petri::ConflictInfo ci(net);
  FamilyInterner in(net.transition_count());
  FamilyId r0 = in.initial_valid_sets(ci);
  FamilyId sub = in.containing(r0, 0);
  (void)in.unite(r0, sub);
  (void)in.unite(r0, sub);  // cache hit
  auto s = in.stats();
  EXPECT_EQ(s.distinct_families, in.size());
  EXPECT_GE(s.intern_calls, s.distinct_families);
  EXPECT_GE(s.dedup_ratio(), 1.0);
  EXPECT_GE(s.op_cache_hits, 1u);
  EXPECT_GT(s.families_bytes, 0u);
  EXPECT_GT(s.op_cache_hit_rate(), 0.0);
  EXPECT_LE(s.op_cache_hit_rate(), 1.0);
}

TEST(FamilyInterner, InternedFamilyContextRejectsWrongUniverse) {
  InternedFamily::Context ctx(4);
  EXPECT_THROW((void)ctx.single(ts(5, {0})), std::invalid_argument);
  EXPECT_THROW((void)ctx.from_sets({ts(3, {0})}), std::invalid_argument);
}

TEST(FamilyInterner, InternedFamilyHashEqualsOnIds) {
  InternedFamily::Context ctx(4);
  auto a = ctx.from_sets({ts(4, {0}), ts(4, {1})});
  auto b = ctx.from_sets({ts(4, {1}), ts(4, {0})});
  auto c = ctx.single(ts(4, {2}));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);
  EXPECT_EQ(a.universe(), 4u);
  EXPECT_EQ(a.id(), b.id());
}

TEST(FamilyInterner, FillStatsSurfacesCounters) {
  InternedFamily::Context ctx(4);
  auto a = ctx.from_sets({ts(4, {0}), ts(4, {1})});
  auto b = ctx.single(ts(4, {1}));
  (void)a.unite(b);
  (void)a.unite(b);
  GpoFamilyStats out;
  ctx.fill_stats(out);
  EXPECT_TRUE(out.available);
  EXPECT_EQ(out.distinct_families, ctx.interner().size());
  EXPECT_GE(out.dedup_ratio, 1.0);
  EXPECT_GE(out.op_cache_hits, 1u);
  EXPECT_GT(out.families_bytes, 0u);
}

}  // namespace
}  // namespace gpo::core
