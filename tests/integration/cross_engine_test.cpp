// The reproduction's own verification: all four engine families must agree
// with exhaustive ground truth on deadlock verdicts (and the symbolic engine
// on exact state counts) across the benchmark models and a corpus of random
// 1-safe nets. This is the property suite DESIGN.md commits to.
#include <gtest/gtest.h>

#include "bdd/symbolic_reach.hpp"
#include "core/gpo.hpp"
#include "models/models.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"

namespace gpo {
namespace {

using petri::PetriNet;

struct Verdicts {
  std::size_t ground_states;
  bool ground;
  bool por;
  bool gpo_explicit;
  bool gpo_interned;
  bool gpo_bdd;
  bool symbolic;
  double symbolic_states;
};

Verdicts run_all(const PetriNet& net) {
  Verdicts v{};
  auto ground = reach::ExplicitExplorer(net).explore();
  EXPECT_FALSE(ground.safeness_violation) << net.name();
  v.ground_states = ground.state_count;
  v.ground = ground.deadlock_found;
  v.por = por::StubbornExplorer(net).explore().deadlock_found;
  v.gpo_explicit =
      core::run_gpo(net, core::FamilyKind::kExplicit).deadlock_found;
  v.gpo_interned =
      core::run_gpo(net, core::FamilyKind::kInterned).deadlock_found;
  v.gpo_bdd = core::run_gpo(net, core::FamilyKind::kBdd).deadlock_found;
  auto sym = bdd::SymbolicReachability(net).analyze();
  EXPECT_FALSE(sym.blowup) << net.name();
  v.symbolic = sym.deadlock_found;
  v.symbolic_states = sym.state_count;
  return v;
}

void expect_agreement(const PetriNet& net) {
  Verdicts v = run_all(net);
  EXPECT_EQ(v.por, v.ground) << net.name();
  EXPECT_EQ(v.gpo_explicit, v.ground) << net.name();
  EXPECT_EQ(v.gpo_interned, v.ground) << net.name();
  EXPECT_EQ(v.gpo_bdd, v.ground) << net.name();
  EXPECT_EQ(v.symbolic, v.ground) << net.name();
  EXPECT_EQ(v.symbolic_states, static_cast<double>(v.ground_states))
      << net.name();
}

class ModelAgreement : public ::testing::TestWithParam<int> {};

TEST(CrossEngine, BenchmarkModelsAgree) {
  expect_agreement(models::make_diamond(5));
  expect_agreement(models::make_conflict_chain(5));
  expect_agreement(models::make_nsdp(2));
  expect_agreement(models::make_nsdp(4));
  expect_agreement(models::make_arbiter_tree(2));
  expect_agreement(models::make_arbiter_tree(4));
  expect_agreement(models::make_overtake(2));
  expect_agreement(models::make_overtake(4));
  expect_agreement(models::make_readers_writers(4));
  expect_agreement(models::make_readers_writers(7));
  expect_agreement(models::make_fig3());
  expect_agreement(models::make_fig7());
}

class RandomAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAgreement, AllEnginesMatchGroundTruth) {
  std::uint64_t base = GetParam();
  for (std::uint64_t seed = base; seed < base + 25; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 3;
    p.states_per_machine = 2 + seed % 4;
    p.transitions = 4 + seed % 14;
    p.sync_percent = 25 + (seed * 11) % 70;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);

    reach::ExplorerOptions eo;
    eo.max_states = 300000;
    auto ground = reach::ExplicitExplorer(net, eo).explore();
    if (ground.limit_hit || ground.safeness_violation) continue;

    auto por_r = por::StubbornExplorer(net).explore();
    EXPECT_EQ(por_r.deadlock_found, ground.deadlock_found)
        << "POR seed=" << seed;

    core::GpoOptions go;
    go.max_states = 500000;
    go.max_seconds = 30;
    auto ge = core::run_gpo(net, core::FamilyKind::kExplicit, go);
    if (!ge.limit_hit) {
      EXPECT_EQ(ge.deadlock_found, ground.deadlock_found)
          << "GPO-explicit seed=" << seed;
      if (ge.deadlock_found) {
        EXPECT_TRUE(ge.witness_is_dead) << seed;
      }
    }
    auto gi = core::run_gpo(net, core::FamilyKind::kInterned, go);
    if (!gi.limit_hit) {
      EXPECT_EQ(gi.deadlock_found, ground.deadlock_found)
          << "GPO-interned seed=" << seed;
      if (!ge.limit_hit) {
        EXPECT_EQ(gi.state_count, ge.state_count)
            << "GPO-interned seed=" << seed;
      }
    }

    auto gb = core::run_gpo(net, core::FamilyKind::kBdd, go);
    if (!gb.limit_hit) {
      EXPECT_EQ(gb.deadlock_found, ground.deadlock_found)
          << "GPO-bdd seed=" << seed;
    }

    auto sym = bdd::SymbolicReachability(net).analyze();
    if (!sym.blowup) {
      EXPECT_EQ(sym.deadlock_found, ground.deadlock_found)
          << "symbolic seed=" << seed;
      EXPECT_EQ(sym.state_count, static_cast<double>(ground.state_count))
          << "symbolic seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAgreement,
                         ::testing::Values(1u, 101u, 201u, 301u));

TEST(CrossEngine, GpoWitnessAlwaysVerifies) {
  // Whenever GPO reports a deadlock on any model, the extracted classical
  // marking must genuinely be dead.
  for (auto make : {+[] { return models::make_nsdp(5); },
                    +[] { return models::make_overtake(5); },
                    +[] { return models::make_conflict_chain(7); },
                    +[] { return models::make_diamond(6); }}) {
    PetriNet net = make();
    auto r = core::run_gpo(net, core::FamilyKind::kBdd);
    ASSERT_TRUE(r.deadlock_found) << net.name();
    ASSERT_TRUE(r.deadlock_witness.has_value()) << net.name();
    EXPECT_TRUE(net.is_deadlocked(*r.deadlock_witness)) << net.name();
  }
}

TEST(CrossEngine, ReductionOrderingOnConflictChain) {
  // The paper's central quantitative claim, end to end: on the Fig. 2
  // family, full = 3^N, POR = 2^{N+1}-1, GPO = 2.
  const std::size_t n = 6;
  PetriNet net = models::make_conflict_chain(n);
  auto full = reach::ExplicitExplorer(net).explore();
  auto por_r = por::StubbornExplorer(net).explore();
  auto gpo_r = core::run_gpo(net, core::FamilyKind::kBdd);
  std::size_t pow3 = 1;
  for (std::size_t i = 0; i < n; ++i) pow3 *= 3;
  EXPECT_EQ(full.state_count, pow3);
  EXPECT_EQ(por_r.state_count, (std::size_t{2} << n) - 1);
  EXPECT_EQ(gpo_r.state_count, 2u);
}

}  // namespace
}  // namespace gpo
