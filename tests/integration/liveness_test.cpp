// Quasi-liveness (Section 2.1: "liveness concerns the question whether a
// transition can ever be fired"): every engine reports the set of
// transitions enabled somewhere in its exploration; after a complete run the
// complement is the dead-transition set. The reduced engines must agree with
// exhaustive ground truth.
#include <gtest/gtest.h>

#include "core/gpo.hpp"
#include "models/models.hpp"
#include "petri/builder.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"

namespace gpo {
namespace {

using petri::PetriNet;

PetriNet net_with_dead_transition() {
  // d needs p2 and p3 together, but only one of them can ever be marked.
  petri::NetBuilder b("deadt");
  auto p1 = b.add_place("p1", true);
  auto p2 = b.add_place("p2");
  auto p3 = b.add_place("p3");
  auto p4 = b.add_place("p4");
  auto ta = b.add_transition("a");
  b.connect(ta, {p1}, {p2});
  auto tb = b.add_transition("b");
  b.connect(tb, {p1}, {p3});
  auto td = b.add_transition("d");
  b.connect(td, {p2, p3}, {p4});
  return b.build();
}

TEST(Liveness, ExplicitFindsDeadTransition) {
  PetriNet net = net_with_dead_transition();
  auto r = reach::ExplicitExplorer(net).explore();
  EXPECT_TRUE(r.fireable_transitions.test(net.find_transition("a")));
  EXPECT_TRUE(r.fireable_transitions.test(net.find_transition("b")));
  EXPECT_FALSE(r.fireable_transitions.test(net.find_transition("d")));
}

TEST(Liveness, StubbornAgrees) {
  PetriNet net = net_with_dead_transition();
  auto r = por::StubbornExplorer(net).explore();
  EXPECT_FALSE(r.fireable_transitions.test(net.find_transition("d")));
  EXPECT_TRUE(r.fireable_transitions.test(net.find_transition("a")));
}

TEST(Liveness, GpoAgrees) {
  PetriNet net = net_with_dead_transition();
  for (auto kind : {core::FamilyKind::kExplicit, core::FamilyKind::kBdd,
                    core::FamilyKind::kInterned}) {
    auto r = core::run_gpo(net, kind);
    EXPECT_FALSE(r.fireable_transitions.test(net.find_transition("d")));
    EXPECT_TRUE(r.fireable_transitions.test(net.find_transition("a")));
    EXPECT_TRUE(r.fireable_transitions.test(net.find_transition("b")));
  }
}

TEST(Liveness, AllTransitionsFireableOnMostBenchmarks) {
  // NSDP, ASAT and RW have no dead transitions.
  for (auto make : {+[] { return models::make_nsdp(3); },
                    +[] { return models::make_arbiter_tree(4); },
                    +[] { return models::make_readers_writers(4); }}) {
    PetriNet net = make();
    auto ground = reach::ExplicitExplorer(net).explore();
    EXPECT_EQ(ground.fireable_transitions.count(), net.transition_count())
        << net.name();
  }
}

TEST(Liveness, OvertakeHasExactlyTheExpectedDeadTransitions) {
  // The last car never asks, so nobody can nack it and nobody retries
  // against it: nackAsk_{n-2} and retry_{n-2} are structurally dead.
  PetriNet net = models::make_overtake(3);
  auto ground = reach::ExplicitExplorer(net).explore();
  EXPECT_EQ(ground.fireable_transitions.count(), net.transition_count() - 2);
  EXPECT_FALSE(
      ground.fireable_transitions.test(net.find_transition("nackAsk_1")));
  EXPECT_FALSE(
      ground.fireable_transitions.test(net.find_transition("retry_1")));
}

TEST(Liveness, RandomNetCertificatesAreSound) {
  for (std::uint64_t seed = 700; seed < 760; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 3;
    p.states_per_machine = 3;
    p.transitions = 5 + seed % 12;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    reach::ExplorerOptions eo;
    eo.max_states = 100000;
    auto ground = reach::ExplicitExplorer(net, eo).explore();
    if (ground.limit_hit) continue;

    // Reduced engines under-approximate: their fireable sets are sound
    // lower bounds (no false quasi-liveness certificates).
    auto por_r = por::StubbornExplorer(net).explore();
    EXPECT_TRUE(por_r.fireable_transitions.is_subset_of(
        ground.fireable_transitions))
        << "POR seed=" << seed;

    core::GpoOptions go;
    go.max_seconds = 20;
    auto gpo_r = core::run_gpo(net, core::FamilyKind::kExplicit, go);
    if (!gpo_r.limit_hit) {
      EXPECT_TRUE(gpo_r.fireable_transitions.is_subset_of(
          ground.fireable_transitions))
          << "GPO seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace gpo
