// The log-bucketed histogram: bucket boundary algebra (index/lower/upper
// inverses), the documented 12.5% relative-error bound, percentile
// estimation, snapshot merging, and the registry integration (kHistogram
// slots, seconds conversion, kind-mismatch detection).
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace gpo::obs {
namespace {

TEST(Histogram, LinearRegionIsExact) {
  // Values below kSubBuckets get one bucket each.
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower(v), v);
    EXPECT_EQ(Histogram::bucket_upper(v), v + 1);
  }
}

TEST(Histogram, BucketLowerIsLeftInverseOfIndex) {
  // Every bucket's lower bound maps back to that bucket, and lower/upper
  // tile the axis without gaps: upper(i) == lower(i+1).
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i)), i)
        << "bucket " << i;
    if (i + 1 < Histogram::kBucketCount) {
      EXPECT_EQ(Histogram::bucket_upper(i), Histogram::bucket_lower(i + 1));
    }
  }
}

TEST(Histogram, ValuesLandInsideTheirBucket) {
  // Probe across magnitudes, including the boundaries of each octave.
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{7}, std::uint64_t{8},
        std::uint64_t{9}, std::uint64_t{15}, std::uint64_t{16},
        std::uint64_t{17}, std::uint64_t{1000}, std::uint64_t{123456789},
        std::uint64_t{1} << 40, (std::uint64_t{1} << 40) + 12345,
        ~std::uint64_t{0}}) {
    const std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kBucketCount) << v;
    EXPECT_GE(v, Histogram::bucket_lower(idx)) << v;
    // The final bucket's upper bound saturates at UINT64_MAX (inclusive).
    if (v != ~std::uint64_t{0}) {
      EXPECT_LT(v, Histogram::bucket_upper(idx)) << v;
    }
  }
}

TEST(Histogram, RelativeErrorBoundedByOneEighth) {
  // The documented accuracy contract: above the linear region the bucket
  // width is at most lower/8, so the midpoint estimate is within 12.5%.
  for (std::size_t i = Histogram::kSubBuckets;
       i + 1 < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower(i);
    const std::uint64_t width = Histogram::bucket_upper(i) - lo;
    EXPECT_LE(width, lo / Histogram::kSubBuckets + 1) << "bucket " << i;
  }
}

TEST(Histogram, PercentilesOnKnownDistribution) {
  Histogram h;
  // 100 samples: 1..100 (exact buckets below 8; quantized above).
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // p50 is the 50th sample = 50; allow the 12.5% quantization.
  EXPECT_NEAR(s.percentile(50), 50.0, 50.0 / 8 + 1);
  EXPECT_NEAR(s.percentile(90), 90.0, 90.0 / 8 + 1);
  // p100 is the top bucket's midpoint, never above the recorded max.
  EXPECT_NEAR(s.percentile(100), 100.0, 100.0 / 8);
  EXPECT_LE(s.percentile(100), static_cast<double>(s.max));
  // Empty snapshot: all zero.
  EXPECT_DOUBLE_EQ(Histogram::Snapshot{}.percentile(50), 0.0);
}

TEST(Histogram, PercentileNeverExceedsMax) {
  Histogram h;
  h.record(1'000'000);  // one sample: every percentile is that sample
  auto s = h.snapshot();
  EXPECT_LE(s.percentile(99), static_cast<double>(s.max));
  EXPECT_DOUBLE_EQ(s.percentile(1), s.percentile(99));
}

TEST(Histogram, SnapshotMergeEqualsSingleStream) {
  Histogram a, b, both;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    (v % 2 == 0 ? a : b).record(v * 7);
    both.record(v * 7);
  }
  auto sa = a.snapshot();
  sa += b.snapshot();
  auto sb = both.snapshot();
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_EQ(sa.sum, sb.sum);
  EXPECT_EQ(sa.max, sb.max);
  EXPECT_EQ(sa.buckets, sb.buckets);
}

TEST(Histogram, RecordSecondsUsesNanoseconds) {
  Histogram h;
  h.record_seconds(0.5);
  h.record_seconds(-1.0);  // clamps to 0
  auto s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_GE(s.max, 400'000'000u);
  EXPECT_LE(s.max, 600'000'000u);
}

TEST(ScopedHistogramTimer, NullIsNoOpAndRealRecords) {
  { ScopedHistogramTimer t(nullptr); }  // must not crash
  Histogram h;
  { ScopedHistogramTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistry, HistogramSlotSnapshotsInSeconds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("service.job_seconds");
  h.record_seconds(0.010);
  h.record_seconds(0.020);
  h.record_seconds(0.100);
  // Same name resolves to the same slot.
  EXPECT_EQ(&reg.histogram("service.job_seconds"), &h);

  bool found = false;
  for (const auto& s : reg.snapshot("service.")) {
    if (s.name != "service.job_seconds") continue;
    found = true;
    EXPECT_EQ(s.kind, MetricKind::kHistogram);
    EXPECT_EQ(s.count, 3u);
    // Registry convention: recorded ns, reported seconds.
    EXPECT_NEAR(s.p50, 0.020, 0.020 / 8 + 1e-9);
    EXPECT_NEAR(s.max, 0.100, 0.100 / 8);
    EXPECT_GE(s.p99, s.p90);
    EXPECT_GE(s.p90, s.p50);
  }
  EXPECT_TRUE(found);
}

TEST(MetricsRegistry, HistogramKindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
  reg.histogram("h");
  EXPECT_THROW(reg.counter("h"), std::logic_error);
}

}  // namespace
}  // namespace gpo::obs
