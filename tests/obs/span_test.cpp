// Span-tree nesting: RAII open/close, parent links, current_path, and the
// phase_tree JSON the run report embeds.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace gpo::obs {
namespace {

TEST(Span, NullTracerIsNoop) {
  Span s(nullptr, "anything");  // must not crash
}

TEST(Tracer, RecordsNestingAndClosesInOrder) {
  Tracer tracer;
  {
    Span outer(&tracer, "outer");
    EXPECT_EQ(tracer.current_path(), "outer");
    {
      Span inner(&tracer, "inner");
      EXPECT_EQ(tracer.current_path(), "outer/inner");
      auto open = tracer.records();
      ASSERT_EQ(open.size(), 2u);
      EXPECT_EQ(open[1].dur_us, -1);  // still open
    }
    Span sibling(&tracer, "sibling");
    EXPECT_EQ(tracer.current_path(), "outer/sibling");
  }
  EXPECT_EQ(tracer.current_path(), "");

  auto records = tracer.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "outer");
  EXPECT_EQ(records[0].parent, 0u);
  EXPECT_EQ(records[0].depth, 0u);
  EXPECT_EQ(records[1].name, "inner");
  EXPECT_EQ(records[1].parent, 1u);  // 1-based: child of "outer"
  EXPECT_EQ(records[1].depth, 1u);
  EXPECT_EQ(records[2].name, "sibling");
  EXPECT_EQ(records[2].parent, 1u);
  for (const auto& r : records) EXPECT_GE(r.dur_us, 0);
  // A parent's span covers its children.
  EXPECT_LE(records[0].start_us, records[1].start_us);
  EXPECT_GE(records[0].start_us + records[0].dur_us,
            records[2].start_us + records[2].dur_us);
}

TEST(PhaseTree, BuildsNestedJson) {
  Tracer tracer;
  {
    Span a(&tracer, "parse");
  }
  {
    Span b(&tracer, "engine/gpo");
    Span c(&tracer, "reduced-search");
  }
  json::Value tree = phase_tree(tracer.records());
  ASSERT_TRUE(tree.is_array());
  ASSERT_EQ(tree.size(), 2u);
  const json::Value& parse = tree.items()[0];
  EXPECT_EQ(parse.find("name")->as_string(), "parse");
  EXPECT_GE(parse.find("ms")->as_number(), 0.0);
  EXPECT_EQ(parse.find("children")->size(), 0u);
  const json::Value& engine = tree.items()[1];
  EXPECT_EQ(engine.find("name")->as_string(), "engine/gpo");
  ASSERT_EQ(engine.find("children")->size(), 1u);
  EXPECT_EQ(engine.find("children")->items()[0].find("name")->as_string(),
            "reduced-search");
}

TEST(PhaseTree, OpenSpanGetsMinusOne) {
  Tracer tracer;
  Span open(&tracer, "running");
  json::Value tree = phase_tree(tracer.records());
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_DOUBLE_EQ(tree.items()[0].find("ms")->as_number(), -1.0);
}

TEST(ChromeTrace, EmitsCompleteEvents) {
  Tracer tracer;
  {
    Span a(&tracer, "phase-a");
    Span b(&tracer, "phase-b");
  }
  std::ostringstream out;
  write_chrome_trace(out, tracer.records());
  json::Value doc = json::Value::parse(out.str());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  const json::Value& e = events->items()[0];
  EXPECT_EQ(e.find("name")->as_string(), "phase-a");
  EXPECT_EQ(e.find("ph")->as_string(), "X");
  EXPECT_GE(e.find("dur")->as_number(), 0.0);
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
}

}  // namespace
}  // namespace gpo::obs
