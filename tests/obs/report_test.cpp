// Run-report round trip: JSON parse/dump, registry serialization, the
// schema golden test against bench/report_schema.json (the same file CI
// validates with bench/validate_report.py), heartbeat line formatting, and
// the telemetry parity property — engines report identical verdicts and
// state counts with and without a registry attached.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/gpo.hpp"
#include "models/models.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "reach/explorer.hpp"

namespace gpo::obs {
namespace {

TEST(Json, ParseDumpRoundTrip) {
  const char* text =
      R"({"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5}, "e": 1e3})";
  json::Value v = json::Value::parse(text);
  json::Value again = json::Value::parse(v.dump_string());
  EXPECT_EQ(v, again);
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_EQ(v.find("b")->items()[2].as_string(), "x\n");
  EXPECT_DOUBLE_EQ(v.find("c")->find("d")->as_number(), -2.5);
  EXPECT_DOUBLE_EQ(v.find("e")->as_number(), 1000.0);
  EXPECT_THROW(json::Value::parse("{broken"), std::runtime_error);
}

TEST(RegistryToJson, StripsPrefixAndKeepsOrder) {
  MetricsRegistry reg;
  reg.counter("engine.full.states").add(729);
  reg.gauge("engine.full.peak_frontier").set(262);
  reg.timer("engine.full.seconds").record_ns(1'500'000'000);
  reg.counter("engine.por.states").add(1);  // filtered out

  json::Value obj = registry_to_json(reg, "engine.full.");
  ASSERT_TRUE(obj.is_object());
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj.members()[0].first, "states");
  EXPECT_TRUE(obj.members()[0].second.is_int());
  EXPECT_EQ(obj.members()[0].second.as_int(), 729);
  EXPECT_EQ(obj.members()[1].first, "peak_frontier");
  EXPECT_DOUBLE_EQ(obj.members()[2].second.as_number(), 1.5);
}

TEST(PeakRss, IsPositiveOnLinux) {
  // /proc/self/status should be available in every environment we test on;
  // the function contract allows 0 only when the file is missing.
  EXPECT_GT(peak_rss_bytes(), 0u);
  EXPECT_GT(current_rss_bytes(), 0u);
}

json::Value load_schema() {
  std::ifstream in(std::string(GPO_REPO_ROOT) + "/bench/report_schema.json");
  EXPECT_TRUE(in.is_open()) << "bench/report_schema.json not found";
  std::ostringstream ss;
  ss << in.rdbuf();
  return json::Value::parse(ss.str());
}

/// Builds a report the way julie does, with a real engine run feeding the
/// counters, and validates it against the checked-in schema.
TEST(RunReport, GoldenDocumentValidatesAgainstCheckedInSchema) {
  MetricsRegistry reg;
  Tracer tracer;
  auto net = models::make_nsdp(4);

  reach::ExplorerOptions opt;
  opt.metrics = &reg;
  opt.metrics_prefix = "engine.full.";
  reach::ExplorerResult r;
  {
    Span span(&tracer, "engine/full");
    r = reach::ExplicitExplorer(net, opt).explore();
  }

  RunReport report("julie");
  report.set_command("julie --model nsdp:4 --engine full --report r.json");
  report.set_net("nsdp4", net.place_count(), net.transition_count());
  RunReport::EngineRun er;
  er.engine = "full";
  er.model = "nsdp:4";
  er.verdict = r.deadlock_found ? "deadlock" : "no-deadlock";
  er.states = static_cast<double>(r.state_count);
  er.seconds = r.seconds;
  er.counters = registry_to_json(reg, "engine.full.");
  report.add_engine(std::move(er));

  json::Value doc = report.build(&tracer, &reg);
  json::Value schema = load_schema();
  std::string error;
  EXPECT_TRUE(json::validate(schema, doc, &error)) << error;

  // Round trip through text: the reparsed document is structurally equal
  // (dump uses shortest-round-trip doubles).
  json::Value reparsed = json::Value::parse(doc.dump_string());
  EXPECT_EQ(doc, reparsed);

  // write() rebuilds at a later instant (peak RSS may have moved), so only
  // validate, don't compare for equality.
  std::ostringstream out;
  report.write(out, &tracer, &reg);
  json::Value written = json::Value::parse(out.str());
  EXPECT_TRUE(json::validate(schema, written, &error)) << error;

  // The memory section must carry the visited-set gauge the explorer
  // published under "mem.".
  const json::Value* gauges = doc.find("memory")->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("engine_full_visited_bytes"), nullptr);
}

/// The observability additions: a report carrying histogram percentile
/// summaries and an events_path pointer must round-trip through text and
/// validate against the checked-in schema (the same subset the Python
/// validator implements).
TEST(RunReport, HistogramsAndEventsPathValidateAgainstSchema) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("service.job_seconds");
  h.record_seconds(0.001);
  h.record_seconds(0.002);
  h.record_seconds(0.050);
  reg.counter("service.jobs.submitted").add(3);  // non-histogram: filtered

  RunReport report("julie batch");
  report.set_events_path("events.jsonl");
  json::Value doc = report.build(nullptr, &reg);

  const json::Value* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_TRUE(hists->is_array());
  ASSERT_EQ(hists->size(), 1u);
  const json::Value& entry = hists->items()[0];
  EXPECT_EQ(entry.find("name")->as_string(), "service.job_seconds");
  EXPECT_EQ(entry.find("count")->as_int(), 3);
  EXPECT_GE(entry.find("p99")->as_number(), entry.find("p50")->as_number());
  EXPECT_NEAR(entry.find("max")->as_number(), 0.050, 0.050 / 8);
  EXPECT_EQ(doc.find("events_path")->as_string(), "events.jsonl");

  json::Value schema = load_schema();
  std::string error;
  EXPECT_TRUE(json::validate(schema, doc, &error)) << error;
  EXPECT_EQ(doc, json::Value::parse(doc.dump_string()));

  // A report with no histogram slots must omit the section entirely (the
  // schema keeps it optional so pre-existing consumers are unaffected).
  RunReport bare("julie");
  json::Value bare_doc = bare.build(nullptr, nullptr);
  EXPECT_EQ(bare_doc.find("histograms"), nullptr);
  EXPECT_EQ(bare_doc.find("events_path"), nullptr);
  EXPECT_TRUE(json::validate(schema, bare_doc, &error)) << error;
}

TEST(RunReport, SchemaRejectsBadVerdictAndMissingFields) {
  json::Value schema = load_schema();
  RunReport report("julie");
  RunReport::EngineRun er;
  er.engine = "full";
  er.verdict = "maybe";  // not in the enum
  report.add_engine(std::move(er));
  json::Value doc = report.build(nullptr, nullptr);
  std::string error;
  EXPECT_FALSE(json::validate(schema, doc, &error));
  EXPECT_NE(error.find("verdict"), std::string::npos) << error;

  json::Value no_engines = json::Value::parse(
      R"({"schema_version": 1, "tool": "julie"})");
  EXPECT_FALSE(json::validate(schema, no_engines, &error));
}

TEST(Heartbeat, EmitLineFormatsLiveSlots) {
  MetricsRegistry reg;
  Tracer tracer;
  std::ostringstream out;
  {
    Heartbeat hb(reg, &tracer, 10.0, out);
    reg.counter("progress.states").add(1234);
    reg.gauge("progress.frontier").set(55);
    reg.gauge("interner.families").set(9);
    Span span(&tracer, "engine/gpo");
    hb.emit_line();
  }  // dtor stop() emits the final line
  std::string text = out.str();
  EXPECT_NE(text.find("[progress "), std::string::npos) << text;
  EXPECT_NE(text.find("states=1234"), std::string::npos) << text;
  EXPECT_NE(text.find("frontier=55"), std::string::npos) << text;
  EXPECT_NE(text.find("rss="), std::string::npos) << text;
  EXPECT_NE(text.find("families=9"), std::string::npos) << text;
  EXPECT_NE(text.find("phase=engine/gpo"), std::string::npos) << text;
  // stop() printed exactly one more line after the explicit emit_line().
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(Heartbeat, QueueDepthAppearsWhenASchedulerRegisteredIt) {
  MetricsRegistry reg;
  std::ostringstream out;
  Heartbeat hb(reg, nullptr, 30.0, out);
  hb.emit_line();
  EXPECT_EQ(out.str().find("queue="), std::string::npos)
      << "no scheduler, no queue field";
  reg.gauge("service.queue.depth").set(3);
  hb.emit_line();
  EXPECT_NE(out.str().find("queue=3"), std::string::npos) << out.str();
}

TEST(Heartbeat, StartStopIsIdempotentAndPrintsFinalLine) {
  MetricsRegistry reg;
  std::ostringstream out;
  Heartbeat hb(reg, nullptr, 30.0, out);
  hb.start();
  reg.counter("progress.states").add(7);
  hb.stop();
  hb.stop();  // idempotent
  std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  EXPECT_NE(text.find("states=7"), std::string::npos) << text;
}

/// Telemetry must be observation only: attaching a registry cannot change
/// verdicts or state counts (acceptance criterion of ISSUE 3).
TEST(TelemetryParity, ExplorerAndGpoResultsUnchangedByRegistry) {
  auto net = models::make_nsdp(4);
  MetricsRegistry reg;
  Tracer tracer;

  reach::ExplorerOptions base;
  auto plain = reach::ExplicitExplorer(net, base).explore();
  reach::ExplorerOptions instrumented = base;
  instrumented.metrics = &reg;
  auto traced = reach::ExplicitExplorer(net, instrumented).explore();
  EXPECT_EQ(plain.state_count, traced.state_count);
  EXPECT_EQ(plain.deadlock_found, traced.deadlock_found);
  EXPECT_EQ(plain.edge_count, traced.edge_count);
  EXPECT_EQ(reg.counter("full.states").value(), plain.state_count);

  core::GpoOptions gbase;
  auto gplain = core::run_gpo(net, core::FamilyKind::kInterned, gbase);
  core::GpoOptions ginst = gbase;
  ginst.metrics = &reg;
  ginst.tracer = &tracer;
  auto gtraced = core::run_gpo(net, core::FamilyKind::kInterned, ginst);
  EXPECT_EQ(gplain.state_count, gtraced.state_count);
  EXPECT_EQ(gplain.deadlock_found, gtraced.deadlock_found);
  EXPECT_EQ(gplain.multiple_steps, gtraced.multiple_steps);
  EXPECT_EQ(gplain.single_steps, gtraced.single_steps);
  EXPECT_EQ(reg.counter("gpo.states").value(), gplain.state_count);
  EXPECT_FALSE(tracer.records().empty());
}

}  // namespace
}  // namespace gpo::obs
