// Registry semantics: slot identity, kind checking, snapshot ordering, and
// the compile-out flag for the per-event hot counters.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gpo::obs {
namespace {

TEST(Counter, AddAndStore) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.store(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(Gauge, SetAndSetMax) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set_max(2.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.set(1.0);  // plain set may lower
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Timer, AccumulatesSamples) {
  Timer t;
  t.record_ns(500'000'000);
  t.record_ns(250'000'000);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.75);
  EXPECT_EQ(t.count(), 2u);
}

TEST(ScopedTimer, NullTimerIsNoop) {
  { ScopedTimer st(nullptr); }  // must not crash
  Timer t;
  { ScopedTimer st(&t); }
  EXPECT_EQ(t.count(), 1u);
}

TEST(MetricsRegistry, SlotReferencesAreStableAndIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.states");
  // Force deque growth with many registrations.
  for (int i = 0; i < 200; ++i)
    reg.counter("x.c" + std::to_string(i)).add();
  Counter& again = reg.counter("x.states");
  EXPECT_EQ(&a, &again);
  a.add(5);
  EXPECT_EQ(reg.counter("x.states").value(), 5u);
  EXPECT_EQ(reg.size(), 201u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), std::logic_error);
  EXPECT_THROW(reg.timer("name"), std::logic_error);
}

TEST(MetricsRegistry, SnapshotFiltersByPrefixInRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("engine.full.states").add(10);
  reg.gauge("engine.full.peak_frontier").set(4);
  reg.counter("engine.por.states").add(6);
  reg.timer("engine.full.seconds").record_ns(1'000'000'000);

  auto snaps = reg.snapshot("engine.full.");
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "engine.full.states");
  EXPECT_EQ(snaps[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snaps[0].count, 10u);
  EXPECT_EQ(snaps[1].name, "engine.full.peak_frontier");
  EXPECT_DOUBLE_EQ(snaps[1].value, 4.0);
  EXPECT_EQ(snaps[2].name, "engine.full.seconds");
  EXPECT_DOUBLE_EQ(snaps[2].value, 1.0);

  EXPECT_EQ(reg.snapshot().size(), 4u);
  EXPECT_TRUE(reg.snapshot("nothing.").empty());
}

TEST(MetricsRegistry, ValueLookup) {
  MetricsRegistry reg;
  reg.counter("a").add(3);
  reg.gauge("b").set(2.5);
  EXPECT_EQ(reg.value("a"), 3.0);
  EXPECT_EQ(reg.value("b"), 2.5);
  EXPECT_FALSE(reg.value("missing").has_value());
}

TEST(HotCounters, FlagMatchesBuildConfiguration) {
#if defined(GPO_OBS_NO_HOT_COUNTERS)
  EXPECT_FALSE(kHotCountersEnabled);
#else
  EXPECT_TRUE(kHotCountersEnabled);
#endif
}

}  // namespace
}  // namespace gpo::obs
