// EventLog round trip: every emitted line is one compact JSON object with
// non-decreasing ts_us, job/span records carry their contract fields, ring
// overflow is reported via the final "dropped" record, and the tracer's
// SpanEventSink hook feeds span-open/span-close pairs through the log.
#include "obs/event_log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/span.hpp"

namespace gpo::obs {
namespace {

std::vector<json::Value> parse_lines(const std::string& text) {
  std::vector<json::Value> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty());
    out.push_back(json::Value::parse(line));
  }
  return out;
}

TEST(EventLog, GoldenRoundTrip) {
  std::ostringstream sink;
  {
    EventLog log(sink);
    json::Value extra = json::Value::object();
    extra["model"] = "nsdp:4";
    log.job_event("submitted", 0, std::move(extra));
    log.job_event("started", 0);
    json::Value racer = json::Value::object();
    racer["engine"] = "gpo-intern";
    log.job_event("racer-start", 0, std::move(racer));
    json::Value fin = json::Value::object();
    fin["verdict"] = "deadlock";
    fin["seconds"] = 0.25;
    log.job_event("finished", 0, std::move(fin));
    log.close();
  }
  auto recs = parse_lines(sink.str());
  ASSERT_EQ(recs.size(), 4u);

  // Every record leads with ts_us then event, and file order is timestamp
  // order (stamped under the push mutex).
  std::int64_t last_ts = -1;
  for (const auto& r : recs) {
    ASSERT_TRUE(r.is_object());
    EXPECT_EQ(r.members()[0].first, "ts_us");
    EXPECT_EQ(r.members()[1].first, "event");
    const std::int64_t ts = r.find("ts_us")->as_int();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    EXPECT_EQ(r.find("job")->as_int(), 0);
  }
  EXPECT_EQ(recs[0].find("event")->as_string(), "submitted");
  EXPECT_EQ(recs[0].find("model")->as_string(), "nsdp:4");
  EXPECT_EQ(recs[2].find("engine")->as_string(), "gpo-intern");
  EXPECT_EQ(recs[3].find("verdict")->as_string(), "deadlock");
  EXPECT_DOUBLE_EQ(recs[3].find("seconds")->as_number(), 0.25);
}

TEST(EventLog, CloseIsIdempotentAndLaterEventsIgnored) {
  std::ostringstream sink;
  EventLog log(sink);
  log.job_event("submitted", 1);
  log.close();
  log.job_event("finished", 1);  // after close: dropped silently
  log.close();                   // idempotent
  auto recs = parse_lines(sink.str());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].find("event")->as_string(), "submitted");
}

TEST(EventLog, RingOverflowAppendsDroppedRecord) {
  std::ostringstream sink;
  {
    // Tiny ring: the flusher may drain some lines mid-test, so we only
    // assert the invariant "kept + dropped == pushed" rather than an exact
    // drop count.
    EventLog log(sink, /*capacity=*/4);
    for (int i = 0; i < 1000; ++i) log.job_event("submitted", i);
    EXPECT_GT(log.dropped(), 0u) << "1000 pushes through a 4-line ring";
    log.close();
  }
  auto recs = parse_lines(sink.str());
  ASSERT_FALSE(recs.empty());
  const json::Value& last = recs.back();
  ASSERT_EQ(last.find("event")->as_string(), "dropped");
  const auto dropped = static_cast<std::size_t>(last.find("count")->as_int());
  EXPECT_EQ((recs.size() - 1) + dropped, 1000u);
}

TEST(EventLog, TracerSinkEmitsSpanPairs) {
  std::ostringstream sink;
  {
    EventLog log(sink);
    Tracer tracer;
    tracer.set_event_sink(&log);
    {
      Span outer(&tracer, "engine/gpo");
      Span inner(&tracer, "reduced-search");
    }
    tracer.set_event_sink(nullptr);
    log.close();
  }
  auto recs = parse_lines(sink.str());
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].find("event")->as_string(), "span-open");
  EXPECT_EQ(recs[0].find("name")->as_string(), "engine/gpo");
  EXPECT_EQ(recs[1].find("name")->as_string(), "reduced-search");
  // LIFO close order; close records carry the duration.
  EXPECT_EQ(recs[2].find("event")->as_string(), "span-close");
  EXPECT_EQ(recs[2].find("name")->as_string(), "reduced-search");
  EXPECT_NE(recs[2].find("dur_us"), nullptr);
  EXPECT_EQ(recs[3].find("name")->as_string(), "engine/gpo");
  // trace_us joins the --trace clock: open and close of one span agree.
  EXPECT_EQ(recs[1].find("trace_us")->as_int(),
            recs[2].find("trace_us")->as_int());
}

}  // namespace
}  // namespace gpo::obs
