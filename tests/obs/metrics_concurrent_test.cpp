// Concurrency: the registry is hammered from many threads the way the
// work-stealing parallel explorer uses it — registration races on the same
// and different names, relaxed increments on shared slots, snapshot reads
// while writers run. Run under TSan via the `parallel` ctest label.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace gpo::obs {
namespace {

TEST(MetricsRegistryConcurrent, IncrementsFromManyThreadsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 50'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Each worker resolves the shared slots itself: registration must be
      // race-free and return the same slot to everyone.
      Counter& states = reg.counter("progress.states");
      Gauge& frontier = reg.gauge("progress.frontier");
      Counter& own = reg.counter("worker." + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        states.add();
        own.add();
        if ((i & 1023) == 0) frontier.set_max(static_cast<double>(i));
      }
    });
  }
  // Snapshot while the writers are still running: must not crash or block
  // them (this is what the heartbeat thread does).
  for (int i = 0; i < 100; ++i) (void)reg.snapshot();
  for (auto& w : workers) w.join();

  EXPECT_EQ(reg.counter("progress.states").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter("worker." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
  EXPECT_DOUBLE_EQ(reg.gauge("progress.frontier").value(),
                   static_cast<double>(((kIters - 1) / 1024) * 1024));
}

TEST(MetricsRegistryConcurrent, HistogramRecordsFromManyThreadsAreExact) {
  // The histogram hot path is relaxed-only (no locks, no acquire/release);
  // totals must still be exact once the writers join. TSan (via the
  // `parallel` label) checks the relaxed accesses are at least atomic.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      Histogram& h = reg.histogram("service.job_seconds");
      for (int i = 0; i < kIters; ++i)
        h.record(static_cast<std::uint64_t>(t * kIters + i));
    });
  }
  // Concurrent snapshots (the STATS command / heartbeat path) must not
  // block or crash the writers.
  for (int i = 0; i < 50; ++i) (void)reg.snapshot("service.");
  for (auto& w : workers) w.join();

  auto s = reg.histogram("service.job_seconds").snapshot();
  constexpr std::uint64_t kN = std::uint64_t{kThreads} * kIters;
  EXPECT_EQ(s.count, kN);
  EXPECT_EQ(s.sum, kN * (kN - 1) / 2);  // sum of 0..kN-1
  EXPECT_EQ(s.max, kN - 1);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kN);
}

TEST(MetricsRegistryConcurrent, SetMaxIsMonotoneUnderContention) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("hwm");
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t)
    workers.emplace_back([&g, t] {
      for (int i = 0; i < 20'000; ++i)
        g.set_max(static_cast<double>(t * 20'000 + i));
    });
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), 8.0 * 20'000 - 1);
}

}  // namespace
}  // namespace gpo::obs
