// Sanity checks on the benchmark model generators: structural counts,
// 1-safety, and the qualitative behaviours each family is built to exhibit.
#include "models/models.hpp"

#include <gtest/gtest.h>

#include "petri/conflict.hpp"
#include "reach/explorer.hpp"

namespace gpo::models {
namespace {

using petri::PetriNet;

TEST(Models, DiamondStructure) {
  PetriNet net = make_diamond(4);
  EXPECT_EQ(net.place_count(), 8u);
  EXPECT_EQ(net.transition_count(), 4u);
  EXPECT_EQ(net.initial_marking().count(), 4u);
  petri::ConflictInfo ci(net);
  EXPECT_EQ(ci.choice_component_count(), 0u);
}

TEST(Models, ConflictChainStructure) {
  PetriNet net = make_conflict_chain(5);
  EXPECT_EQ(net.place_count(), 15u);
  EXPECT_EQ(net.transition_count(), 10u);
  petri::ConflictInfo ci(net);
  EXPECT_EQ(ci.choice_component_count(), 5u);
}

TEST(Models, NsdpRejectsTooSmall) {
  EXPECT_THROW((void)make_nsdp(1), std::invalid_argument);
}

TEST(Models, AsatRequiresPowerOfTwo) {
  EXPECT_THROW((void)make_arbiter_tree(3), std::invalid_argument);
  EXPECT_THROW((void)make_arbiter_tree(0), std::invalid_argument);
  EXPECT_NO_THROW((void)make_arbiter_tree(8));
}

TEST(Models, OverRejectsTooSmall) {
  EXPECT_THROW((void)make_overtake(1), std::invalid_argument);
}

TEST(Models, RwRejectsZero) {
  EXPECT_THROW((void)make_readers_writers(0), std::invalid_argument);
}

class SafenessCheck
    : public ::testing::TestWithParam<std::pair<const char*, PetriNet>> {};

TEST(Models, AllFamiliesAreOneSafe) {
  std::vector<PetriNet> nets;
  nets.push_back(make_diamond(4));
  nets.push_back(make_conflict_chain(4));
  nets.push_back(make_nsdp(4));
  nets.push_back(make_arbiter_tree(4));
  nets.push_back(make_overtake(4));
  nets.push_back(make_readers_writers(5));
  nets.push_back(make_fig3());
  nets.push_back(make_fig5());
  nets.push_back(make_fig7());
  for (const PetriNet& net : nets) {
    auto r = reach::ExplicitExplorer(net).explore();
    EXPECT_FALSE(r.safeness_violation) << net.name();
  }
}

TEST(Models, NsdpHasTheClassicDeadlock) {
  for (std::size_t n : {2u, 3u, 5u}) {
    PetriNet net = make_nsdp(n);
    auto r = reach::ExplicitExplorer(net).explore();
    ASSERT_TRUE(r.deadlock_found) << "n=" << n;
    // The all-left grab is one of the dead markings: every hasL marked.
    petri::Marking all_left(net.place_count());
    for (std::size_t i = 0; i < n; ++i)
      all_left.set(net.find_place("hasL_" + std::to_string(i)));
    EXPECT_TRUE(net.is_deadlocked(all_left)) << "n=" << n;
    // Deadlocks come in at least two flavours (all-left, all-right).
    EXPECT_GE(r.deadlock_count, 2u) << "n=" << n;
  }
}

TEST(Models, ArbiterTreeIsDeadlockFreeAndMutex) {
  for (std::size_t n : {2u, 4u}) {
    PetriNet net = make_arbiter_tree(n);
    // Mutual exclusion: never two clients in the critical section.
    std::vector<petri::PlaceId> crits;
    for (std::size_t k = n; k <= 2 * n - 1; ++k)
      crits.push_back(net.find_place("crit_" + std::to_string(k)));
    reach::ExplorerOptions opt;
    opt.bad_state = [&](const petri::Marking& m) {
      int in_crit = 0;
      for (petri::PlaceId p : crits) in_crit += m.test(p) ? 1 : 0;
      return in_crit > 1;
    };
    auto r = reach::ExplicitExplorer(net, opt).explore();
    EXPECT_FALSE(r.deadlock_found) << "n=" << n;
    EXPECT_FALSE(r.bad_state_found) << "mutex violated, n=" << n;
    // Some client can actually reach the critical section.
    reach::ExplorerOptions reach_crit;
    reach_crit.bad_state = [&](const petri::Marking& m) {
      return m.test(crits[0]);
    };
    EXPECT_TRUE(
        reach::ExplicitExplorer(net, reach_crit).explore().bad_state_found);
  }
}

TEST(Models, OvertakeDeadlockIsTheStrandedAsker) {
  PetriNet net = make_overtake(3);
  auto r = reach::ExplicitExplorer(net).explore();
  ASSERT_TRUE(r.deadlock_found);
  // In every dead marking some car is stuck asking.
  bool some_asking = false;
  for (std::size_t i = 0; i + 1 < 3; ++i)
    some_asking |= r.first_deadlock->test(
        net.find_place("asking_" + std::to_string(i)));
  EXPECT_TRUE(some_asking);
}

TEST(Models, ReadersWritersInvariants) {
  PetriNet net = make_readers_writers(4);
  std::vector<petri::PlaceId> writing, reading;
  for (std::size_t i = 0; i < 4; ++i) {
    writing.push_back(net.find_place("writing_" + std::to_string(i)));
    reading.push_back(net.find_place("reading_" + std::to_string(i)));
  }
  reach::ExplorerOptions opt;
  opt.bad_state = [&](const petri::Marking& m) {
    int writers = 0, readers = 0;
    for (auto p : writing) writers += m.test(p) ? 1 : 0;
    for (auto p : reading) readers += m.test(p) ? 1 : 0;
    return writers > 1 || (writers == 1 && readers > 0);
  };
  auto r = reach::ExplicitExplorer(net, opt).explore();
  EXPECT_FALSE(r.bad_state_found) << "writer exclusion violated";
  EXPECT_FALSE(r.deadlock_found);
  // Full state count: all reader subsets + one-writer states.
  EXPECT_EQ(r.state_count, (std::size_t{1} << 4) + 4);
}

TEST(Models, RwConflictStructureIsOneClique) {
  // All start transitions form a single conflict component (the reason
  // classical POR degenerates on this family).
  PetriNet net = make_readers_writers(4);
  petri::ConflictInfo ci(net);
  auto sr0 = net.find_transition("startR_0");
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ci.component_of(net.find_transition("startR_" + std::to_string(i))),
              ci.component_of(sr0));
    EXPECT_EQ(ci.component_of(net.find_transition("startW_" + std::to_string(i))),
              ci.component_of(sr0));
  }
}

TEST(Models, CyclicSchedulerIsSafeDeadlockFreeAndConflictFree) {
  for (std::size_t n : {2u, 4u, 6u}) {
    PetriNet net = make_cyclic_scheduler(n);
    auto r = reach::ExplicitExplorer(net).explore();
    EXPECT_FALSE(r.safeness_violation) << n;
    EXPECT_FALSE(r.deadlock_found) << n;
    petri::ConflictInfo ci(net);
    EXPECT_EQ(ci.choice_component_count(), 0u) << n;  // pure concurrency
  }
  EXPECT_THROW((void)make_cyclic_scheduler(1), std::invalid_argument);
}

TEST(Models, CyclicSchedulerTokenInvariant) {
  // Exactly one scheduler token circulates.
  PetriNet net = make_cyclic_scheduler(4);
  std::vector<petri::PlaceId> toks;
  for (std::size_t i = 0; i < 4; ++i)
    toks.push_back(net.find_place("tok_" + std::to_string(i)));
  reach::ExplorerOptions opt;
  opt.bad_state = [&](const petri::Marking& m) {
    int count = 0;
    for (auto p : toks) count += m.test(p) ? 1 : 0;
    return count != 1;
  };
  EXPECT_FALSE(reach::ExplicitExplorer(net, opt).explore().bad_state_found);
}

TEST(Models, SlottedRingIsSafeAndDeadlockFree) {
  for (std::size_t n : {2u, 3u, 4u, 5u}) {
    PetriNet net = make_slotted_ring(n);
    auto r = reach::ExplicitExplorer(net).explore();
    EXPECT_FALSE(r.safeness_violation) << n;
    EXPECT_FALSE(r.deadlock_found) << n;
  }
  EXPECT_THROW((void)make_slotted_ring(1), std::invalid_argument);
}

TEST(Models, SlottedRingHasConcurrentConflicts) {
  PetriNet net = make_slotted_ring(6);
  petri::ConflictInfo ci(net);
  EXPECT_GE(ci.choice_component_count(), 6u);
}

TEST(Models, SlottedRingSlotConservation) {
  // Each position holds exactly one of {empty, free, full}.
  PetriNet net = make_slotted_ring(4);
  reach::ExplorerOptions opt;
  opt.bad_state = [&](const petri::Marking& m) {
    for (std::size_t i = 0; i < 4; ++i) {
      int c = 0;
      c += m.test(net.find_place("empty_" + std::to_string(i))) ? 1 : 0;
      c += m.test(net.find_place("free_" + std::to_string(i))) ? 1 : 0;
      c += m.test(net.find_place("full_" + std::to_string(i))) ? 1 : 0;
      if (c != 1) return true;
    }
    return false;
  };
  EXPECT_FALSE(reach::ExplicitExplorer(net, opt).explore().bad_state_found);
}

TEST(Models, RandomNetsAreSafeByConstruction) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    RandomNetParams p;
    p.machines = 2 + seed % 4;
    p.states_per_machine = 2 + seed % 4;
    p.transitions = 4 + seed % 15;
    p.sync_percent = (seed * 17) % 100;
    p.seed = seed;
    PetriNet net = make_random_net(p);
    reach::ExplorerOptions opt;
    opt.max_states = 100000;
    auto r = reach::ExplicitExplorer(net, opt).explore();
    EXPECT_FALSE(r.safeness_violation) << "seed=" << seed;
  }
}

TEST(Models, RandomNetIsDeterministicInSeed) {
  RandomNetParams p;
  p.seed = 77;
  PetriNet a = make_random_net(p);
  PetriNet b = make_random_net(p);
  ASSERT_EQ(a.place_count(), b.place_count());
  ASSERT_EQ(a.transition_count(), b.transition_count());
  for (petri::TransitionId t = 0; t < a.transition_count(); ++t) {
    EXPECT_EQ(a.transition(t).pre, b.transition(t).pre);
    EXPECT_EQ(a.transition(t).post, b.transition(t).post);
  }
}

TEST(Models, GrowthShapesMatchTable1) {
  // Full-graph growth must be exponential-ish in the parameter for NSDP and
  // OVER — the precondition for the paper's comparison to be interesting.
  auto states = [](const PetriNet& net) {
    return reach::ExplicitExplorer(net).explore().state_count;
  };
  EXPECT_GT(states(make_nsdp(4)), 4 * states(make_nsdp(2)));
  EXPECT_GT(states(make_overtake(5)), 3 * states(make_overtake(4)));
  EXPECT_GT(states(make_readers_writers(8)),
            3 * states(make_readers_writers(6)));
}

}  // namespace
}  // namespace gpo::models
